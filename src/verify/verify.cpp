#include "verify/verify.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "obs/telemetry.hpp"

namespace si::verify {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// JSON has no literal for infinities / NaN; emit null so machine
/// consumers see "unbounded" without choking the parser.
std::string jnum(double v) { return std::isfinite(v) ? fmt(v) : "null"; }

/// One searchable coordinate of the corner box.
struct SearchVar {
  enum Kind { kVdd, kVtN, kVtP, kBetaN, kBetaP, kSource } kind = kVdd;
  std::string source;  ///< element name for kSource
  double lo = 1.0, nominal = 1.0, hi = 1.0;
};

void apply(Corner& c, const SearchVar& v, double value) {
  switch (v.kind) {
    case SearchVar::kVdd: c.vdd_scale = value; break;
    case SearchVar::kVtN: c.vt_n_shift = value; break;
    case SearchVar::kVtP: c.vt_p_shift = value; break;
    case SearchVar::kBetaN: c.beta_n_scale = value; break;
    case SearchVar::kBetaP: c.beta_p_scale = value; break;
    case SearchVar::kSource: c.source_scale[v.source] = value; break;
  }
}

double get(const Corner& c, const SearchVar& v) {
  switch (v.kind) {
    case SearchVar::kVdd: return c.vdd_scale;
    case SearchVar::kVtN: return c.vt_n_shift;
    case SearchVar::kVtP: return c.vt_p_shift;
    case SearchVar::kBetaN: return c.beta_n_scale;
    case SearchVar::kBetaP: return c.beta_p_scale;
    case SearchVar::kSource: {
      const auto it = c.source_scale.find(v.source);
      return it == c.source_scale.end() ? 1.0 : it->second;
    }
  }
  return 1.0;
}

std::vector<SearchVar> standard_vars(const AbsOptions& o,
                                     const std::vector<std::string>& sources) {
  std::vector<SearchVar> vars = {
      {SearchVar::kVdd, "", 1.0 - o.supply_rel_tol, 1.0, 1.0 + o.supply_rel_tol},
      {SearchVar::kVtN, "", -o.vt_abs_tol, 0.0, o.vt_abs_tol},
      {SearchVar::kVtP, "", -o.vt_abs_tol, 0.0, o.vt_abs_tol},
      {SearchVar::kBetaN, "", 1.0 - o.beta_rel_tol, 1.0, 1.0 + o.beta_rel_tol},
      {SearchVar::kBetaP, "", 1.0 - o.beta_rel_tol, 1.0, 1.0 + o.beta_rel_tol},
  };
  for (const std::string& s : sources)
    vars.push_back({SearchVar::kSource, s, 1.0 - o.current_rel_tol, 1.0,
                    1.0 + o.current_rel_tol});
  return vars;
}

/// Greedy coordinate descent over the corner box: each round tries the
/// {lo, nominal, hi} value of every coordinate, keeping improvements.
/// The SI margin functions are monotone in each coordinate, so this
/// converges to the true worst corner in one or two rounds.
template <typename Fn>
double corner_search(const std::vector<SearchVar>& vars, Corner& corner,
                     std::size_t& evals, Fn&& margin) {
  double best = margin(corner);
  ++evals;
  for (int round = 0; round < 8; ++round) {
    bool improved = false;
    for (const SearchVar& v : vars) {
      const double keep = get(corner, v);
      double best_val = keep;
      for (const double cand : {v.lo, v.nominal, v.hi}) {
        if (cand == keep) continue;
        apply(corner, v, cand);
        const double m = margin(corner);
        ++evals;
        if (m < best - 1e-15) {
          best = m;
          best_val = cand;
          improved = true;
        }
      }
      apply(corner, v, best_val);
    }
    if (!improved) break;
  }
  return best;
}

std::vector<WitnessVar> witness_of(const Corner& corner,
                                   const PairAnalysis& P) {
  std::vector<WitnessVar> w = {
      {"vdd", P.rail_nominal * corner.vdd_scale},
      {"vt_n", (P.mn ? P.mn->params().vt0 : 0.0) + corner.vt_n_shift},
      {"vt_p", (P.mp ? P.mp->params().vt0 : 0.0) + corner.vt_p_shift},
      {"beta_n_scale", corner.beta_n_scale},
      {"beta_p_scale", corner.beta_p_scale},
  };
  for (const auto& [name, scale] : corner.source_scale)
    w.push_back({"scale(" + name + ")", scale});
  return w;
}

std::string pair_label(const PairAnalysis& P) {
  std::string s;
  if (P.mn) s += P.mn->name();
  s += "/";
  if (P.mp) s += P.mp->name();
  return s;
}

std::string witness_text(const std::vector<WitnessVar>& w) {
  std::string s = "witness corner: ";
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (i) s += ", ";
    s += w[i].name + "=" + fmt(w[i].value);
  }
  return s;
}

}  // namespace

std::string to_string(const Interval& v) {
  if (v.is_empty()) return "empty";
  if (v.is_top()) return "top";
  return "[" + fmt(v.lo) + ", " + fmt(v.hi) + "]";
}

VerifyResult analyze(const spice::Circuit& c, const VerifyOptions& opt) {
  obs::counter("verify.runs").add();
  AbstractInterpreter ai(c, opt.abs);
  const AbsResult ar = ai.run();

  VerifyResult out;
  out.stats.nodes = c.node_count();
  out.stats.segments = ar.segments.size();
  out.stats.pairs = ar.pairs.size();
  out.stats.switches = ar.switch_elements.size();
  out.stats.iterations = ar.iterations;
  out.stats.widenings = ar.widenings;
  out.stats.nodes_resolved = ar.nodes_resolved;

  for (std::size_t n = 1; n < c.node_count(); ++n)
    if (!ar.hull[n].is_empty())
      out.ranges.push_back({c.node_name(static_cast<spice::NodeId>(n)),
                            ar.hull[n]});

  for (const PairAnalysis& P : ar.pairs)
    out.pairs.push_back({P.mn ? P.mn->name() : "", P.mp ? P.mp->name() : "",
                         c.node_name(static_cast<spice::NodeId>(P.drain)),
                         P.i_in, P.v_drain, P.vov_n, P.vov_p, P.resolved,
                         P.input_forked});

  const double min_ov = opt.min_overdrive;
  std::size_t evals = 0;

  for (std::size_t k = 0; k < ar.pairs.size(); ++k) {
    const PairAnalysis& P = ar.pairs[k];
    if (!P.resolved || !P.mn || !P.mp) continue;
    const double vt_n0 = P.mn->params().vt0;
    const double vt_p0 = P.mp->params().vt0;

    // --- si.supply-floor-worstcase (Eqs. (1)-(2)) ------------------
    if (opt.check_supply_floor) {
      const Interval screen = P.vdd - P.vt_n - P.vt_p -
                              Interval::point(2.0 * min_ov);
      if (screen.is_empty() || screen.lo < 0.0) {
        Corner corner;
        const auto vars = standard_vars(opt.abs, {});
        const double m = corner_search(
            vars, corner, evals, [&](const Corner& cr) {
              return P.rail_nominal * cr.vdd_scale - (vt_n0 + cr.vt_n_shift) -
                     (vt_p0 + cr.vt_p_shift) - 2.0 * min_ov;
            });
        if (m < 0.0) {
          Finding f;
          f.rule = "si.supply-floor-worstcase";
          f.element = pair_label(P);
          f.margin = m;
          f.witness = witness_of(corner, P);
          f.message = "supply floor violated at a tolerance corner: Vdd=" +
                      fmt(P.rail_nominal * corner.vdd_scale) +
                      " V < Vtn+Vtp+2*Vov_min=" +
                      fmt(vt_n0 + corner.vt_n_shift + vt_p0 +
                          corner.vt_p_shift + 2.0 * min_ov) +
                      " V (Eqs. (1)-(2)); " + witness_text(f.witness);
          f.fix = "raise the supply or use lower-Vt memory devices";
          out.findings.push_back(std::move(f));
        }
      }
    }

    // --- si.overdrive-margin ---------------------------------------
    if (opt.check_overdrive) {
      const bool safe = !P.vov_n.is_empty() && !P.vov_p.is_empty() &&
                        std::min(P.vov_n.lo, P.vov_p.lo) >= min_ov;
      if (!safe) {
        Corner corner;
        const auto vars = standard_vars(opt.abs, P.source_deps);
        const double m = corner_search(
            vars, corner, evals, [&](const Corner& cr) {
              const PairOp op = ai.eval_pair(ar, k, cr);
              if (!op.valid) return kInf;
              return std::min(op.vov_n, op.vov_p) - min_ov;
            });
        if (m < 0.0 && std::isfinite(m)) {
          const PairOp op = ai.eval_pair(ar, k, corner);
          Finding f;
          f.rule = "si.overdrive-margin";
          f.element = pair_label(P);
          f.margin = m;
          f.witness = witness_of(corner, P);
          f.message = "sampling overdrive collapses at a tolerance corner: "
                      "min(Vov_n, Vov_p)=" +
                      fmt(std::min(op.vov_n, op.vov_p)) + " V < " +
                      fmt(min_ov) + " V; " + witness_text(f.witness);
          f.fix = "increase bias current or supply headroom";
          out.findings.push_back(std::move(f));
        }
      }
    }

    // --- si.region-violation ---------------------------------------
    if (opt.check_region && !P.hold_segments.empty()) {
      Interval v_hold = Interval::empty();
      for (const int s : P.hold_segments)
        v_hold = join(v_hold,
                      ar.v[static_cast<std::size_t>(P.drain)]
                          [static_cast<std::size_t>(s)]);
      const bool ok_n = !P.vov_n.is_empty() &&
                        (P.vov_n.hi <= 0.0 ||
                         (!v_hold.is_empty() && v_hold.lo >= P.vov_n.hi));
      const bool ok_p = !P.vov_p.is_empty() &&
                        (P.vov_p.hi <= 0.0 ||
                         (!v_hold.is_empty() && !P.vdd.is_empty() &&
                          P.vdd.lo - v_hold.hi >= P.vov_p.hi));
      if (!(ok_n && ok_p)) {
        Corner corner;
        const auto vars = standard_vars(opt.abs, P.source_deps);
        const double m = corner_search(
            vars, corner, evals, [&](const Corner& cr) {
              const PairOp op = ai.eval_pair(ar, k, cr);
              if (!op.valid || !std::isfinite(op.v_drain_hold)) return kInf;
              const double mn = op.vov_n > 0.0
                                    ? op.v_drain_hold - op.vov_n
                                    : kInf;
              const double mp = op.vov_p > 0.0
                                    ? (op.vdd - op.v_drain_hold) - op.vov_p
                                    : kInf;
              return std::min(mn, mp);
            });
        if (m < 0.0 && std::isfinite(m)) {
          const PairOp op = ai.eval_pair(ar, k, corner);
          Finding f;
          f.rule = "si.region-violation";
          f.element = pair_label(P);
          f.margin = m;
          f.witness = witness_of(corner, P);
          f.message = "memory transistor leaves saturation during hold: "
                      "held drain voltage " +
                      fmt(op.v_drain_hold) + " V vs overdrive (Vov_n=" +
                      fmt(op.vov_n) + ", Vov_p=" + fmt(op.vov_p) + ") V; " +
                      witness_text(f.witness);
          f.fix = "keep the held drain inside [Vov_n, Vdd-Vov_p]";
          out.findings.push_back(std::move(f));
        }
      }
    }

    // --- si.range-overflow -----------------------------------------
    if (opt.check_range) {
      const Interval hull = ar.hull[static_cast<std::size_t>(P.drain)];
      const bool safe = !hull.is_empty() && ar.rail_window.contains(hull);
      if (!safe) {
        Corner corner;
        const auto vars = standard_vars(opt.abs, P.source_deps);
        const double rail_margin = opt.abs.rail_margin;
        const double m = corner_search(
            vars, corner, evals, [&](const Corner& cr) {
              const PairOp op = ai.eval_pair(ar, k, cr);
              if (!op.valid) return kInf;
              const double lo_win = -rail_margin;
              const double hi_win = op.vdd + rail_margin;
              double margin = std::min(op.v_drain - lo_win,
                                       hi_win - op.v_drain);
              if (std::isfinite(op.v_drain_hold))
                margin = std::min(
                    margin, std::min(op.v_drain_hold - lo_win,
                                     hi_win - op.v_drain_hold));
              return margin;
            });
        if (m < 0.0 && std::isfinite(m)) {
          const PairOp op = ai.eval_pair(ar, k, corner);
          Finding f;
          f.rule = "si.range-overflow";
          f.element = pair_label(P);
          f.margin = m;
          f.witness = witness_of(corner, P);
          f.message = "signal range overflow: drain of " + pair_label(P) +
                      " reaches " + fmt(op.v_drain) +
                      " V, outside the rail window [" + fmt(-rail_margin) +
                      ", " + fmt(op.vdd + rail_margin) + "] V; " +
                      witness_text(f.witness);
          f.fix = "reduce the input current amplitude or re-bias the pair";
          out.findings.push_back(std::move(f));
        }
      }
    }
  }

  // --- exact clock-phase timing ------------------------------------
  if (opt.check_clocks) {
    const auto& sws = ar.switch_elements;
    for (std::size_t i = 0; i < sws.size(); ++i)
      for (std::size_t j = i + 1; j < sws.size(); ++j) {
        const OverlapReport rep = phase_overlap(ar.phases[i], ar.phases[j]);
        if (!std::isfinite(rep.margin) && rep.overlap == 0.0) continue;
        out.timing.edges.push_back(
            {sws[i]->name(), sws[j]->name(), rep.margin, rep.overlap});
        if (rep.margin < out.timing.min_margin) {
          out.timing.min_margin = rep.margin;
          out.timing.worst_a = sws[i]->name();
          out.timing.worst_b = sws[j]->name();
        }
      }
  }

  out.stats.corners_evaluated = evals;
  obs::counter("verify.nodes_analyzed").add(out.stats.nodes);
  obs::counter("verify.segments").add(out.stats.segments);
  obs::counter("verify.pairs_analyzed").add(out.stats.pairs);
  obs::counter("verify.fixpoint_iterations").add(out.stats.iterations);
  obs::counter("verify.widenings").add(out.stats.widenings);
  obs::counter("verify.corners_evaluated").add(evals);
  obs::counter("verify.findings").add(out.findings.size());
  return out;
}

void report(const VerifyResult& r, erc::DiagnosticSink& sink) {
  for (const Finding& f : r.findings) {
    erc::Diagnostic d;
    d.severity = erc::Severity::kError;
    d.rule = f.rule;
    d.message = f.message;
    d.element = f.element;
    d.fix = f.fix;
    sink.report(std::move(d));
  }
}

std::string to_json(const VerifyResult& r) {
  std::ostringstream os;
  os << "{\"findings\":[";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    const Finding& f = r.findings[i];
    if (i) os << ",";
    os << "{\"rule\":\"" << erc::json_escape(f.rule) << "\",\"element\":\""
       << erc::json_escape(f.element) << "\",\"margin\":" << jnum(f.margin)
       << ",\"witness\":{";
    for (std::size_t w = 0; w < f.witness.size(); ++w) {
      if (w) os << ",";
      os << "\"" << erc::json_escape(f.witness[w].name)
         << "\":" << jnum(f.witness[w].value);
    }
    os << "},\"message\":\"" << erc::json_escape(f.message) << "\",\"fix\":\""
       << erc::json_escape(f.fix) << "\"}";
  }
  os << "],\"ranges\":[";
  bool first = true;
  for (const NodeRange& nr : r.ranges) {
    if (nr.v.is_empty()) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"node\":\"" << erc::json_escape(nr.node) << "\",\"lo\":"
       << jnum(nr.v.lo) << ",\"hi\":" << jnum(nr.v.hi) << "}";
  }
  os << "],\"pairs\":[";
  for (std::size_t i = 0; i < r.pairs.size(); ++i) {
    const PairSummary& p = r.pairs[i];
    if (i) os << ",";
    os << "{\"mn\":\"" << erc::json_escape(p.mn) << "\",\"mp\":\""
       << erc::json_escape(p.mp) << "\",\"drain\":\""
       << erc::json_escape(p.drain) << "\",\"resolved\":"
       << (p.resolved ? "true" : "false") << ",\"forked\":"
       << (p.input_forked ? "true" : "false");
    if (p.resolved && !p.vov_n.is_empty())
      os << ",\"i_in\":[" << jnum(p.i_in.lo) << "," << jnum(p.i_in.hi)
         << "],\"v_drain\":[" << jnum(p.v_drain.lo) << "," << jnum(p.v_drain.hi)
         << "],\"vov_n\":[" << jnum(p.vov_n.lo) << "," << jnum(p.vov_n.hi)
         << "],\"vov_p\":[" << jnum(p.vov_p.lo) << "," << jnum(p.vov_p.hi)
         << "]";
    os << "}";
  }
  os << "],\"timing\":{";
  if (std::isfinite(r.timing.min_margin))
    os << "\"min_margin\":" << fmt(r.timing.min_margin) << ",\"worst\":[\""
       << erc::json_escape(r.timing.worst_a) << "\",\""
       << erc::json_escape(r.timing.worst_b) << "\"],";
  os << "\"edges\":[";
  for (std::size_t i = 0; i < r.timing.edges.size(); ++i) {
    const TimingEdge& e = r.timing.edges[i];
    if (i) os << ",";
    os << "{\"a\":\"" << erc::json_escape(e.a) << "\",\"b\":\""
       << erc::json_escape(e.b) << "\",\"margin\":" << jnum(e.margin)
       << ",\"overlap\":" << jnum(e.overlap) << "}";
  }
  os << "]},\"stats\":{\"nodes\":" << r.stats.nodes
     << ",\"segments\":" << r.stats.segments << ",\"pairs\":" << r.stats.pairs
     << ",\"switches\":" << r.stats.switches
     << ",\"nodes_resolved\":" << r.stats.nodes_resolved
     << ",\"iterations\":" << r.stats.iterations
     << ",\"widenings\":" << r.stats.widenings
     << ",\"corners_evaluated\":" << r.stats.corners_evaluated << "}}";
  return os.str();
}

}  // namespace si::verify
