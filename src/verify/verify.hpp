// Static circuit verification: the public face of src/verify/.
//
// analyze() runs the interval abstract interpreter (absint.hpp) over a
// circuit, then evaluates the SI property checkers on the result:
//
//   si.supply-floor-worstcase  Vdd >= Vtn + Vtp + 2*Vov under tolerance
//                              (the paper's Eqs. (1)-(2))
//   si.overdrive-margin        both memory devices keep >= min_overdrive
//                              of gate overdrive while sampling
//   si.region-violation        a memory transistor provably leaves
//                              saturation during its hold phase
//   si.range-overflow          a node voltage escapes the rail window
//
// Witness soundness contract: the interval pass is a screen — a margin
// proven non-negative for every corner is reported safe and skipped.
// Anything else goes to a concrete corner search, and a violation is
// reported ONLY when a specific corner assignment (the witness) exhibits
// a negative margin under scalar evaluation.  The analysis may therefore
// over-approximate (fail to prove safety and also fail to certify a
// violation — it then stays silent) but never claims a violation without
// a concrete reproducing corner.
//
// Exact clock-phase timing (phase.hpp) is reported alongside as a
// pairwise non-overlap margin matrix.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "erc/diagnostics.hpp"
#include "verify/absint.hpp"

namespace si::verify {

struct VerifyOptions {
  AbsOptions abs;               ///< tolerances and fixpoint policy
  double min_overdrive = 0.05;  ///< required gate overdrive [V]
  bool check_supply_floor = true;
  bool check_overdrive = true;
  bool check_region = true;
  bool check_range = true;
  bool check_clocks = true;
};

/// One coordinate of a witness corner, e.g. {"vdd", 1.6856}.
struct WitnessVar {
  std::string name;
  double value = 0.0;
};

/// A certified property violation with its reproducing corner.
struct Finding {
  std::string rule;
  std::string element;  ///< offending pair ("MN/MP") or node
  std::string message;
  std::string fix;
  double margin = 0.0;  ///< signed margin at the witness corner [V]
  std::vector<WitnessVar> witness;
};

/// Proven voltage range of one node (hull over all clock segments).
struct NodeRange {
  std::string node;
  Interval v;
};

/// Non-overlap margin between two switches (see OverlapReport::margin).
struct TimingEdge {
  std::string a, b;
  double margin = 0.0;
  double overlap = 0.0;
};

struct TimingReport {
  double min_margin = std::numeric_limits<double>::infinity();
  std::string worst_a, worst_b;
  std::vector<TimingEdge> edges;
};

/// Analysis summary of one memory pair.
struct PairSummary {
  std::string mn, mp, drain;
  Interval i_in, v_drain, vov_n, vov_p;
  bool resolved = false;
  bool input_forked = false;
};

struct VerifyStats {
  std::size_t nodes = 0, segments = 0, pairs = 0, switches = 0;
  std::size_t nodes_resolved = 0;
  std::size_t iterations = 0, widenings = 0;
  std::size_t corners_evaluated = 0;
};

struct VerifyResult {
  std::vector<Finding> findings;
  std::vector<NodeRange> ranges;
  std::vector<PairSummary> pairs;
  TimingReport timing;
  VerifyStats stats;
};

/// Runs the full static verification of `c`.
VerifyResult analyze(const spice::Circuit& c, const VerifyOptions& opt = {});

/// Files every finding into an ERC sink (error severity, rule ids as
/// above, the witness corner folded into the message).
void report(const VerifyResult& r, erc::DiagnosticSink& sink);

/// Machine-readable rendering: findings with witnesses, node ranges,
/// the timing matrix, and stats.
std::string to_json(const VerifyResult& r);

}  // namespace si::verify
