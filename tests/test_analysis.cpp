#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "analysis/measure.hpp"
#include "analysis/plot.hpp"
#include "analysis/table.hpp"
#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"

namespace {

using si::analysis::amplitude_sweep;
using si::analysis::level_grid;
using si::analysis::run_tone_test;
using si::analysis::StreamProcessor;
using si::analysis::Table;
using si::analysis::ToneTestConfig;

TEST(Measure, IdentityDutRecoversStimulus) {
  ToneTestConfig cfg;
  cfg.fft_points = 1 << 12;
  cfg.clock_hz = 1e6;
  cfg.tone_hz = 10e3;
  cfg.band_hz = 0.5e6;
  cfg.settle_samples = 64;
  const auto r = run_tone_test([](const std::vector<double>& x) { return x; },
                               1.0, cfg);
  EXPECT_NEAR(r.metrics.fundamental_hz, cfg.coherent_tone_hz(),
              r.spectrum.bin_width());
  EXPECT_NEAR(r.metrics.signal_power, 0.5, 1e-3);
  EXPECT_GT(r.metrics.snr_db, 100.0);  // numerically clean sine
}

TEST(Measure, KnownNoiseFloorMeasured) {
  ToneTestConfig cfg;
  cfg.fft_points = 1 << 13;
  cfg.clock_hz = 1e6;
  cfg.tone_hz = 10e3;
  cfg.band_hz = 0.5e6;
  cfg.settle_samples = 0;
  const double sigma = 1e-3;
  auto dut = [sigma](const std::vector<double>& x) {
    auto y = x;
    const auto n = si::dsp::white_noise(y.size(), sigma, 9);
    for (std::size_t i = 0; i < y.size(); ++i) y[i] += n[i];
    return y;
  };
  const auto r = run_tone_test(dut, 1.0, cfg);
  const double expected = 10.0 * std::log10(0.5 / (sigma * sigma));
  EXPECT_NEAR(r.metrics.snr_db, expected, 1.5);
}

TEST(Measure, DutChangingLengthThrows) {
  ToneTestConfig cfg;
  cfg.fft_points = 1 << 10;
  cfg.settle_samples = 0;
  auto bad = [](const std::vector<double>& x) {
    return std::vector<double>(x.begin(), x.begin() + 5);
  };
  EXPECT_THROW(run_tone_test(bad, 1.0, cfg), std::runtime_error);
}

TEST(Measure, NonPowerOfTwoThrows) {
  ToneTestConfig cfg;
  cfg.fft_points = 1000;
  EXPECT_THROW(
      run_tone_test([](const std::vector<double>& x) { return x; }, 1.0, cfg),
      std::invalid_argument);
}

TEST(Measure, SweepRecoversAnalyticDynamicRange) {
  // DUT: unity passthrough with fixed additive noise sigma.  SNDR in a
  // full band = level - noise floor; DR = 20log10(FS/sigma) - 3 dB...
  // verify against the closed form.
  ToneTestConfig cfg;
  cfg.fft_points = 1 << 12;
  cfg.clock_hz = 1e6;
  cfg.tone_hz = 10e3;
  cfg.band_hz = 0.5e6;
  cfg.settle_samples = 0;
  const double sigma = 1e-3;
  std::uint64_t seed = 1;
  auto make = [&](double) -> StreamProcessor {
    const std::uint64_t s = seed++;
    return [s, sigma](const std::vector<double>& x) {
      auto y = x;
      const auto n = si::dsp::white_noise(y.size(), sigma, s);
      for (std::size_t i = 0; i < y.size(); ++i) y[i] += n[i];
      return y;
    };
  };
  const auto levels = level_grid(-80.0, 0.0, 5.0);
  const auto sweep = amplitude_sweep(make, levels, 1.0, cfg);
  const double expected_dr =
      10.0 * std::log10(0.5 / (sigma * sigma));
  EXPECT_NEAR(sweep.dynamic_range_db, expected_dr, 2.0);
  EXPECT_NEAR(sweep.peak_sndr_db, expected_dr, 2.0);
  EXPECT_EQ(sweep.points.size(), levels.size());
}

TEST(Measure, LevelGrid) {
  const auto g = level_grid(-10.0, 0.0, 5.0);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_DOUBLE_EQ(g[0], -10.0);
  EXPECT_DOUBLE_EQ(g[2], 0.0);
  EXPECT_THROW(level_grid(0.0, -10.0, 5.0), std::invalid_argument);
  EXPECT_THROW(level_grid(0.0, 10.0, 0.0), std::invalid_argument);
}

TEST(TableFmt, FixedWidthRendering) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableFmt, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(TableFmt, NumberFormatting) {
  EXPECT_EQ(si::analysis::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(si::analysis::fmt_eng(6e-6, "A", 2), "6.00 uA");
  EXPECT_EQ(si::analysis::fmt_eng(33e-9, "A", 0), "33 nA");
  EXPECT_EQ(si::analysis::fmt_eng(3.3, "V", 1), "3.3 V");
  EXPECT_EQ(si::analysis::fmt_eng(2.45e6, "Hz", 2), "2.45 MHz");
  EXPECT_EQ(si::analysis::fmt_eng(0.0, "W", 1), "0.0 W");
}


TEST(TableFmt, CsvExport) {
  Table t({"name", "value"});
  t.add_row({"plain", "1.5"});
  t.add_row({"with,comma", "say \"hi\""});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(),
            "name,value\n"
            "plain,1.5\n"
            "\"with,comma\",\"say \"\"hi\"\"\"\n");
}


TEST(Plot, AsciiChartRendersAndScales) {
  std::vector<double> x, y;
  for (int k = 0; k <= 50; ++k) {
    x.push_back(k);
    y.push_back(std::sin(0.2 * k));
  }
  std::ostringstream os;
  si::analysis::AsciiChartOptions opt;
  opt.width = 40;
  opt.height = 10;
  opt.x_label = "n";
  opt.y_label = "amp";
  si::analysis::ascii_chart(os, x, y, opt);
  const std::string s = os.str();
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find("amp"), std::string::npos);
  // 10 data rows plus axis rows.
  EXPECT_GE(std::count(s.begin(), s.end(), '\n'), 12);
  EXPECT_THROW(si::analysis::ascii_chart(os, {1.0}, {1.0}),
               std::invalid_argument);
}

TEST(Plot, AsciiSpectrumShowsTone) {
  const std::size_t n = 1 << 12;
  const double fs = 1e6;
  const double f = si::dsp::coherent_frequency(50e3, fs, n);
  const auto x = si::dsp::sine(n, 1.0, f, fs);
  const auto spec = si::dsp::compute_power_spectrum(x, fs);
  std::ostringstream os;
  si::analysis::ascii_spectrum(os, spec, 0.5, 1e3, fs / 2.0);
  EXPECT_NE(os.str().find('*'), std::string::npos);
  EXPECT_THROW(si::analysis::ascii_spectrum(os, spec, 0.5, 0.0, 1e3),
               std::invalid_argument);
}

}  // namespace
