#include <gtest/gtest.h>

#include <cmath>

#include "si/blocks.hpp"

namespace {

using si::cells::AccumulatorConfig;
using si::cells::Diff;
using si::cells::MemoryCellParams;
using si::cells::ScalingMirror;
using si::cells::SiAccumulatorStage;

AccumulatorConfig ideal_config() {
  AccumulatorConfig c;
  c.cell = MemoryCellParams::ideal();
  c.cell_mismatch_sigma = 0.0;
  c.use_cmff = false;
  return c;
}

TEST(ScalingMirror, ExactGainWithoutMismatch) {
  ScalingMirror m(0.5, 0.0, 1);
  EXPECT_DOUBLE_EQ(m.nominal_gain(), 0.5);
  EXPECT_DOUBLE_EQ(m.realized_gain(), 0.5);
  const Diff out = m.apply(Diff::from_dm_cm(4e-6, 2e-6));
  EXPECT_DOUBLE_EQ(out.dm(), 2e-6);
  EXPECT_DOUBLE_EQ(out.cm(), 1e-6);
}

TEST(ScalingMirror, MismatchIsDeterministicAndBounded) {
  ScalingMirror a(1.0, 1e-3, 5);
  ScalingMirror b(1.0, 1e-3, 5);
  EXPECT_DOUBLE_EQ(a.realized_gain(), b.realized_gain());
  EXPECT_NEAR(a.realized_gain(), 1.0, 1e-2);
  EXPECT_NE(a.realized_gain(), 1.0);
}

TEST(Accumulator, IntegratorAccumulates) {
  SiAccumulatorStage stage(ideal_config(), +1.0);
  // w[n+1] = w[n] + u[n]: feed constant 1 uA.
  for (int n = 1; n <= 5; ++n) {
    stage.step(Diff::from_dm_cm(1e-6, 0.0));
    EXPECT_NEAR(stage.output().dm(), n * 1e-6, 1e-17);
  }
}

TEST(Accumulator, IntegratorIsDelaying) {
  SiAccumulatorStage stage(ideal_config(), +1.0);
  // Before any step the output is zero; an impulse appears next cycle.
  EXPECT_DOUBLE_EQ(stage.output().dm(), 0.0);
  stage.step(Diff::from_dm_cm(3e-6, 0.0));
  EXPECT_NEAR(stage.output().dm(), 3e-6, 1e-18);
  stage.step(Diff{});
  EXPECT_NEAR(stage.output().dm(), 3e-6, 1e-18);  // holds (pole at z=1)
}

TEST(Accumulator, ChopperStageAlternatesSign) {
  SiAccumulatorStage stage(ideal_config(), -1.0);
  // w[n+1] = -(w[n] + u[n]); impulse 1 -> -1, +1, -1, ...
  stage.step(Diff::from_dm_cm(1e-6, 0.0));
  EXPECT_NEAR(stage.output().dm(), -1e-6, 1e-18);
  stage.step(Diff{});
  EXPECT_NEAR(stage.output().dm(), 1e-6, 1e-18);
  stage.step(Diff{});
  EXPECT_NEAR(stage.output().dm(), -1e-6, 1e-18);
}

TEST(Accumulator, ChopperStageIntegratesAlternatingInput) {
  // At fs/2 the chopped stage behaves as the integrator does at DC:
  // feed (-1)^n and watch the magnitude grow linearly.
  SiAccumulatorStage stage(ideal_config(), -1.0);
  double sign = 1.0;
  for (int n = 1; n <= 6; ++n) {
    stage.step(Diff::from_dm_cm(sign * 1e-6, 0.0));
    sign = -sign;
    EXPECT_NEAR(std::abs(stage.output().dm()), n * 1e-6, 1e-17);
  }
}

TEST(Accumulator, TransmissionErrorMakesLossyIntegrator) {
  AccumulatorConfig c = ideal_config();
  c.cell.base_transmission_error = 1e-2;
  c.cell.gga_gain = 1.0;
  SiAccumulatorStage stage(c, +1.0);
  // The loop applies (1-eps)^2 per cycle: a leaky pole.
  stage.step(Diff::from_dm_cm(1e-6, 0.0));
  const double w1 = stage.output().dm();
  stage.step(Diff{});
  const double w2 = stage.output().dm();
  EXPECT_LT(w2, w1);
  EXPECT_NEAR(w2 / w1, (1.0 - 1e-2) * (1.0 - 1e-2), 1e-6);
}

TEST(Accumulator, CmffInsideLoopRemovesCommonMode) {
  AccumulatorConfig c = ideal_config();
  c.use_cmff = true;
  c.cmff.mirror_mismatch_sigma = 0.0;
  SiAccumulatorStage stage(c, +1.0);
  for (int n = 0; n < 10; ++n) stage.step(Diff::from_dm_cm(0.0, 1e-6));
  EXPECT_NEAR(stage.output().cm(), 0.0, 1e-15);
  EXPECT_NEAR(stage.output().dm(), 0.0, 1e-15);
}

TEST(Accumulator, ResetClearsState) {
  SiAccumulatorStage stage(ideal_config(), +1.0);
  stage.step(Diff::from_dm_cm(2e-6, 0.0));
  stage.reset();
  EXPECT_DOUBLE_EQ(stage.output().dm(), 0.0);
  stage.step(Diff{});
  EXPECT_DOUBLE_EQ(stage.output().dm(), 0.0);
}

TEST(Accumulator, RejectsBadSign) {
  EXPECT_THROW(SiAccumulatorStage(ideal_config(), 0.5),
               std::invalid_argument);
}

}  // namespace
