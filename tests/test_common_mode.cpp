#include <gtest/gtest.h>

#include <cmath>

#include "si/common_mode.hpp"

namespace {

using si::cells::Cmfb;
using si::cells::CmfbParams;
using si::cells::Cmff;
using si::cells::CmffParams;
using si::cells::Diff;

TEST(Cmff, PerfectMirrorsCancelCommonModeExactly) {
  CmffParams p;
  p.mirror_mismatch_sigma = 0.0;
  Cmff ff(p, 1);
  const Diff out = ff.process(Diff::from_dm_cm(4e-6, 3e-6));
  EXPECT_NEAR(out.cm(), 0.0, 1e-18);
  EXPECT_NEAR(out.dm(), 4e-6, 1e-18);
  EXPECT_NEAR(ff.residual_cm_gain(), 0.0, 1e-15);
}

TEST(Cmff, SystematicExtractionErrorLeavesResidual) {
  CmffParams p;
  p.mirror_mismatch_sigma = 0.0;
  p.extraction_gain_error = 0.02;
  Cmff ff(p, 1);
  const Diff out = ff.process(Diff::from_dm_cm(0.0, 5e-6));
  EXPECT_NEAR(out.cm(), -0.02 * 5e-6, 1e-12);
  EXPECT_NEAR(ff.residual_cm_gain(), -0.02, 1e-12);
}

TEST(Cmff, MismatchCausesCmToDmConversion) {
  CmffParams p;
  p.mirror_mismatch_sigma = 5e-3;
  Cmff ff(p, 7);
  const Diff out = ff.process(Diff::from_dm_cm(0.0, 10e-6));
  // Some small but nonzero DM appears, matching the reported gain.
  EXPECT_NE(out.dm(), 0.0);
  EXPECT_NEAR(out.dm(), ff.cm_to_dm_gain() * 10e-6, 1e-12);
  EXPECT_LT(std::abs(out.dm()), 0.05 * 10e-6);
}

TEST(Cmff, IsInstantaneousAndStateless) {
  Cmff ff(CmffParams{}, 3);
  const Diff in = Diff::from_dm_cm(1e-6, 2e-6);
  const Diff first = ff.process(in);
  for (int i = 0; i < 10; ++i) {
    const Diff again = ff.process(in);
    EXPECT_DOUBLE_EQ(again.p, first.p);
    EXPECT_DOUBLE_EQ(again.m, first.m);
  }
}

TEST(Cmfb, ConvergesGeometrically) {
  CmfbParams p;
  p.loop_gain = 0.5;
  Cmfb fb(p);
  const Diff in = Diff::from_dm_cm(0.0, 1e-6);
  double prev = 1e-6;
  for (int i = 0; i < 10; ++i) {
    const double r = std::abs(fb.process(in).cm());
    EXPECT_LE(r, prev * (1.0 + 1e-12));
    prev = r;
  }
  EXPECT_LT(prev, 1e-8);  // converged well below the input CM
}

TEST(Cmfb, SlowerWithSmallerLoopGain) {
  CmfbParams fast_p, slow_p;
  fast_p.loop_gain = 0.5;
  slow_p.loop_gain = 0.1;
  Cmfb fast(fast_p), slow(slow_p);
  const Diff in = Diff::from_dm_cm(0.0, 1e-6);
  double r_fast = 0, r_slow = 0;
  for (int i = 0; i < 6; ++i) {
    r_fast = std::abs(fast.process(in).cm());
    r_slow = std::abs(slow.process(in).cm());
  }
  EXPECT_LT(r_fast, r_slow);
}

TEST(Cmfb, SenseSaturatesOutsideRange) {
  CmfbParams p;
  p.loop_gain = 1.0;
  p.sense_range = 1e-6;
  Cmfb fb(p);
  // A huge CM step: the first correction is limited by the tanh range.
  fb.process(Diff::from_dm_cm(0.0, 100e-6));
  EXPECT_LE(fb.correction(), 1.001e-6);
}

TEST(Cmfb, DifferentialSignalLeaksIntoCorrection) {
  CmfbParams p;
  p.dm_leakage = 0.1;
  Cmfb fb(p);
  // Pure DM input, zero CM: the correction must stay zero if the loop
  // were linear; the leakage term makes it move.
  fb.process(Diff::from_dm_cm(8e-6, 0.0));
  EXPECT_GT(std::abs(fb.correction()), 0.0);
  fb.reset();
  EXPECT_DOUBLE_EQ(fb.correction(), 0.0);
}

TEST(Cmfb, PreservesDifferentialSignal) {
  Cmfb fb(CmfbParams{});
  const Diff out = fb.process(Diff::from_dm_cm(5e-6, 2e-6));
  EXPECT_DOUBLE_EQ(out.dm(), 5e-6);
}

}  // namespace
