#include <gtest/gtest.h>

#include <cmath>

#include "dsm/adc.hpp"
#include "dsm/decimator.hpp"
#include "dsp/fft.hpp"
#include "dsp/metrics.hpp"
#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"

namespace {

using si::dsm::DecimatorChain;
using si::dsm::DecimatorChainConfig;
using si::dsm::SiAdc;
using si::dsm::SiAdcConfig;

TEST(Decimator, RegisterBitsFormula) {
  DecimatorChainConfig c;
  c.cic_order = 3;
  c.cic_decimation = 32;
  EXPECT_EQ(c.cic_register_bits(), 16);  // 1 + 3*log2(32)
  c.cic_decimation = 128;
  EXPECT_EQ(c.cic_register_bits(), 22);
  EXPECT_EQ(c.total_decimation(), 128u * 4u);
}

TEST(Decimator, DcBitStreamGivesDcPcm) {
  DecimatorChainConfig c;
  DecimatorChain d(c);
  // A 3/4-density bitstream carries DC = 0.5.
  std::vector<double> bits;
  for (int k = 0; k < 4096; ++k)
    bits.push_back((k % 4 == 0) ? -1.0 : 1.0);
  const auto pcm = d.process(bits);
  ASSERT_GT(pcm.size(), 10u);
  // Average the settled middle (the FIR edges see zero padding).
  double mean = 0.0;
  const std::size_t lo = pcm.size() / 3, hi = 2 * pcm.size() / 3;
  for (std::size_t k = lo; k < hi; ++k) mean += pcm[k];
  mean /= static_cast<double>(hi - lo);
  EXPECT_NEAR(mean, 0.5, 1e-3);
}

TEST(Decimator, FixedPointMatchesFloatWithinQuantization) {
  DecimatorChainConfig cf;
  DecimatorChainConfig cx = cf;
  cx.fixed_point = true;
  cx.cic_output_bits = 16;
  cx.fir_coeff_bits = 16;
  cx.fir_data_bits = 16;
  DecimatorChain df(cf), dx(cx);
  // Random bit stream.
  si::dsp::Xoshiro256 rng(3);
  std::vector<double> bits(1 << 14);
  for (auto& b : bits) b = rng.uniform() < 0.6 ? 1.0 : -1.0;
  const auto yf = df.process(bits);
  const auto yx = dx.process(bits);
  ASSERT_EQ(yf.size(), yx.size());
  for (std::size_t k = 20; k < yf.size(); ++k)
    EXPECT_NEAR(yx[k], yf[k], 2e-3) << "k=" << k;  // ~16-bit grid + trunc
}

TEST(Decimator, CoarseWordlengthDegradesAccuracy) {
  DecimatorChainConfig fine;
  fine.fixed_point = true;
  fine.cic_output_bits = 16;
  fine.fir_data_bits = 16;
  DecimatorChainConfig coarse = fine;
  coarse.cic_output_bits = 6;
  coarse.fir_data_bits = 6;
  DecimatorChain df(fine), dc(coarse);
  si::dsp::Xoshiro256 rng(9);
  std::vector<double> bits(1 << 13);
  for (auto& b : bits) b = rng.uniform() < 0.7 ? 1.0 : -1.0;
  DecimatorChainConfig ref_cfg;
  DecimatorChain ref(ref_cfg);
  const auto yr = ref.process(bits);
  const auto yf = df.process(bits);
  const auto yc = dc.process(bits);
  double ef = 0.0, ec = 0.0;
  for (std::size_t k = 20; k < yr.size(); ++k) {
    ef += (yf[k] - yr[k]) * (yf[k] - yr[k]);
    ec += (yc[k] - yr[k]) * (yc[k] - yr[k]);
  }
  EXPECT_GT(ec, 10.0 * ef);
}

TEST(Decimator, RejectsOverflowingConfig) {
  DecimatorChainConfig c;
  c.fixed_point = true;
  c.cic_order = 8;
  c.cic_decimation = 1 << 9;  // 1 + 72 bits of growth: too wide
  EXPECT_THROW(DecimatorChain{c}, std::invalid_argument);
}

TEST(Decimator, ResetClearsState) {
  DecimatorChainConfig c;
  c.fixed_point = true;
  DecimatorChain d(c);
  std::vector<double> ones(512, 1.0);
  (void)d.process(ones);
  d.reset();
  const auto y = d.process(std::vector<double>(512, -1.0));
  // After reset the chain must not remember the previous +1 block: the
  // steady output heads to -1.
  EXPECT_LT(y.back(), -0.9);
}

TEST(SiAdcTop, DcTransfer) {
  SiAdcConfig cfg;
  SiAdc adc(cfg);
  const std::vector<double> x(1 << 14, 2e-6);  // DC input, 1/3 FS
  const auto pcm = adc.convert(x);
  ASSERT_GT(pcm.size(), 20u);
  // Average the settled tail.
  double mean = 0.0;
  std::size_t count = 0;
  for (std::size_t k = pcm.size() / 2; k < pcm.size(); ++k) {
    mean += pcm[k];
    ++count;
  }
  mean /= static_cast<double>(count);
  EXPECT_NEAR(mean, 2e-6, 0.1e-6);
}

TEST(SiAdcTop, SineConversionSnr) {
  SiAdcConfig cfg;
  SiAdc adc(cfg);
  const std::size_t n = 1 << 17;
  const double f = si::dsp::coherent_frequency(1e3, cfg.clock_hz, n);
  const auto x = si::dsp::sine(n, 3e-6, f, cfg.clock_hz);
  auto pcm = adc.convert(x);
  // Window the settled tail into a power-of-two record.
  const std::size_t keep = si::dsp::next_power_of_two(pcm.size()) / 2;
  pcm.erase(pcm.begin(),
            pcm.begin() + static_cast<std::ptrdiff_t>(pcm.size() - keep));
  const auto s = si::dsp::compute_power_spectrum(pcm, adc.output_rate());
  si::dsp::ToneMeasurementOptions opt;
  opt.fundamental_hz = f;
  const auto m = si::dsp::measure_tone(s, opt);
  EXPECT_GT(m.sndr_db, 45.0);  // near the in-band SNDR of the modulator
}

TEST(SiAdcTop, ExpectedDrBitsSensible) {
  SiAdcConfig cfg;
  SiAdc adc(cfg);
  const double bits = adc.expected_dr_bits();
  EXPECT_GT(bits, 8.0);
  EXPECT_LT(bits, 16.0);
  EXPECT_NEAR(adc.output_rate(), 2.45e6 / 128.0, 1.0);
}

}  // namespace
