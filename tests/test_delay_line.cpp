#include <gtest/gtest.h>

#include <cmath>

#include "analysis/measure.hpp"
#include "si/delay_line.hpp"

namespace {

using si::cells::CommonModeControl;
using si::cells::DelayLine;
using si::cells::DelayLineConfig;
using si::cells::Diff;
using si::cells::MemoryCellParams;

DelayLineConfig ideal_config(int delays) {
  DelayLineConfig c;
  c.cell = MemoryCellParams::ideal();
  c.delays = delays;
  c.mismatch_sigma = 0.0;
  c.cmff.mirror_mismatch_sigma = 0.0;
  return c;
}

TEST(DelayLine, IdealLineIsPureDelay) {
  DelayLine line(ideal_config(1));
  std::vector<double> in{1e-6, 2e-6, -3e-6, 4e-6, 0.0, 0.0};
  const auto out = line.run_dm(in);
  // z^-1 with positive polarity (two inverting cells).
  for (std::size_t k = 1; k < in.size(); ++k)
    EXPECT_NEAR(out[k], in[k - 1], 1e-18) << "k=" << k;
}

TEST(DelayLine, MultiDelayLine) {
  const int n_delay = 3;
  DelayLine line(ideal_config(n_delay));
  std::vector<double> in(16, 0.0);
  in[0] = 5e-6;
  const auto out = line.run_dm(in);
  for (std::size_t k = 0; k < in.size(); ++k) {
    if (k == static_cast<std::size_t>(n_delay))
      EXPECT_NEAR(out[k], 5e-6, 1e-18);
    else
      EXPECT_NEAR(out[k], 0.0, 1e-18);
  }
}

TEST(DelayLine, RejectsZeroDelays) {
  DelayLineConfig c = ideal_config(0);
  EXPECT_THROW(DelayLine{c}, std::invalid_argument);
}

TEST(DelayLine, CmffRemovesInputCommonMode) {
  // A common-mode component rides on the differential input (e.g. from
  // an unbalanced previous stage).  Without control it propagates to
  // the output; with CMFF it is subtracted every stage.
  DelayLineConfig c = ideal_config(2);
  c.cm_control = CommonModeControl::kNone;
  DelayLine plain(c);
  DelayLineConfig cf = c;
  cf.cm_control = CommonModeControl::kCmff;
  DelayLine with_cmff(cf);
  double cm_plain = 0.0, cm_ff = 0.0;
  for (int k = 0; k < 20; ++k) {
    const Diff in = Diff::from_dm_cm(1e-6, 2e-6);
    cm_plain = plain.process(in).cm();
    cm_ff = with_cmff.process(in).cm();
  }
  EXPECT_NEAR(std::abs(cm_plain), 2e-6, 1e-8);  // CM passes through
  EXPECT_LT(std::abs(cm_ff), 1e-9);             // CMFF cancels it
  // The differential signal is untouched in both cases.
  EXPECT_NEAR(plain.process(Diff::from_dm_cm(1e-6, 2e-6)).dm(), 1e-6, 1e-12);
}

TEST(DelayLine, CmfbAlsoControlsCommonMode) {
  DelayLineConfig c = ideal_config(2);
  c.cm_control = CommonModeControl::kCmfb;
  DelayLine line(c);
  double cm = 0.0;
  for (int k = 0; k < 100; ++k)
    cm = line.process(Diff::from_dm_cm(0.0, 2e-6)).cm();
  // The feedback loop drives the propagated CM well below the input.
  EXPECT_LT(std::abs(cm), 1e-7);
}

TEST(DelayLine, ResetClearsState) {
  DelayLine line(ideal_config(1));
  line.process(Diff::from_dm_cm(9e-6, 0.0));
  line.reset();
  EXPECT_NEAR(line.process(Diff::from_dm_cm(0.0, 0.0)).dm(), 0.0, 1e-18);
}

TEST(DelayLine, PaperCellMeetsTable1Numbers) {
  // Integration test against the calibrated Table 1 targets.
  si::analysis::ToneTestConfig cfg;
  cfg.clock_hz = 5e6;
  cfg.tone_hz = 5e3;
  cfg.band_hz = 2.5e6;
  cfg.fft_points = 1 << 15;
  DelayLineConfig dl;
  auto dut = [&](const std::vector<double>& x) {
    DelayLine line(dl);
    return line.run_dm(x);
  };
  const auto r8 = si::analysis::run_tone_test(dut, 8e-6, cfg);
  EXPECT_LT(r8.metrics.thd_db, -47.0);   // paper: < -50 dB
  EXPECT_GT(r8.metrics.thd_db, -60.0);   // but close to the limit
  const auto r16 = si::analysis::run_tone_test(dut, 16e-6, cfg);
  EXPECT_NEAR(r16.metrics.snr_db, 50.0, 3.0);  // paper: ~50 dB
  // THD degrades at larger input (GGA slewing).
  EXPECT_GT(r16.metrics.thd_db, r8.metrics.thd_db + 5.0);
}

TEST(DelayLine, DeterministicAcrossRuns) {
  DelayLineConfig c;  // full noise model
  DelayLine a(c), b(c);
  for (int k = 0; k < 100; ++k) {
    const Diff in = Diff::from_dm_cm(1e-6 * std::sin(0.1 * k), 0.0);
    const Diff oa = a.process(in);
    const Diff ob = b.process(in);
    EXPECT_DOUBLE_EQ(oa.p, ob.p);
    EXPECT_DOUBLE_EQ(oa.m, ob.m);
  }
}

}  // namespace
