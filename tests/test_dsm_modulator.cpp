#include <gtest/gtest.h>

#include <cmath>

#include "analysis/measure.hpp"
#include "dsm/linear_model.hpp"
#include "dsm/modulator.hpp"
#include "dsp/metrics.hpp"
#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"

namespace {

using si::dsm::IdealSecondOrderModulator;
using si::dsm::ScBaselineModulator;
using si::dsm::SiModulatorConfig;
using si::dsm::SiSigmaDeltaModulator;

SiModulatorConfig ideal_config(bool chopper) {
  SiModulatorConfig c;
  c.cell = si::cells::MemoryCellParams::ideal();
  c.coeff_mismatch_sigma = 0.0;
  c.dac_mismatch_sigma = 0.0;
  c.cell_mismatch_sigma = 0.0;
  c.cmff.mirror_mismatch_sigma = 0.0;
  c.input_ci_a3 = 0.0;
  c.chopper = chopper;
  return c;
}

/// In-band SNDR of a modulator stream at OSR 128.
double sndr_of(std::vector<double> bits, double f_tone) {
  for (auto& v : bits) v *= 6e-6;
  const auto s = si::dsp::compute_power_spectrum(bits, 2.45e6);
  si::dsp::ToneMeasurementOptions opt;
  opt.fundamental_hz = f_tone;
  opt.band_hi_hz = 2.45e6 / 256.0;
  return si::dsp::measure_tone(s, opt).sndr_db;
}

TEST(IdealModulator, DcInputGivesMatchingBitDensity) {
  IdealSecondOrderModulator m(0.5, 0.5, 0.25, 0.25, 1.0);
  const int n = 20000;
  double sum = 0.0;
  for (int k = 0; k < n; ++k) sum += m.step(0.25);
  // Mean of +-1 bits tracks the input (DAC reference 1.0).
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(IdealModulator, ZeroInputBalancedBits) {
  IdealSecondOrderModulator m(0.5, 0.5, 0.25, 0.25, 1.0);
  double sum = 0.0;
  for (int k = 0; k < 20000; ++k) sum += m.step(0.0);
  EXPECT_NEAR(sum / 20000.0, 0.0, 0.01);
}

TEST(IdealModulator, StatesBoundedForInBandInput) {
  IdealSecondOrderModulator m(0.5, 0.5, 0.25, 0.25, 1.0);
  const auto x = si::dsp::sine(1 << 14, 0.5, 1e-3, 1.0);
  double peak1 = 0, peak2 = 0;
  for (double v : x) {
    m.step(v);
    peak1 = std::max(peak1, std::abs(m.state1()));
    peak2 = std::max(peak2, std::abs(m.state2()));
  }
  EXPECT_LT(peak1, 3.0);
  EXPECT_LT(peak2, 3.0);
}

TEST(IdealModulator, NoiseShapingSlopeIsSecondOrder) {
  // In-band quantization noise drops ~15 dB per OSR octave.
  IdealSecondOrderModulator m(0.5, 0.5, 0.25, 0.25, 6e-6);
  const std::size_t n = 1 << 16;
  const double fclk = 2.45e6;
  const double f = si::dsp::coherent_frequency(1e3, fclk, n);
  const auto x = si::dsp::sine(n, 3e-6, f, fclk);
  auto bits = m.run(x);
  for (auto& v : bits) v *= 6e-6;
  const auto s = si::dsp::compute_power_spectrum(bits, fclk);
  si::dsp::ToneMeasurementOptions o64, o128;
  o64.fundamental_hz = f;
  o64.band_hi_hz = fclk / 128.0;
  o128.fundamental_hz = f;
  o128.band_hi_hz = fclk / 256.0;
  const double snr_64 = si::dsp::measure_tone(s, o64).snr_db;
  const double snr_128 = si::dsp::measure_tone(s, o128).snr_db;
  EXPECT_NEAR(snr_128 - snr_64, 15.0, 4.0);
}

TEST(SiModulator, ChopperMatchesPlainUnderIdealCells) {
  // Fig. 3(a) and (b) realize the same transfer: with ideal cells the
  // in-band SNDR agrees closely at several levels.
  const std::size_t n = 1 << 15;
  const double fclk = 2.45e6;
  const double f = si::dsp::coherent_frequency(2e3, fclk, n);
  for (double amp : {0.3e-6, 3e-6}) {
    const auto x = si::dsp::sine(n, amp, f, fclk);
    SiSigmaDeltaModulator plain(ideal_config(false));
    SiSigmaDeltaModulator chop(ideal_config(true));
    const double s_plain = sndr_of(plain.run(x), f);
    const double s_chop = sndr_of(chop.run(x), f);
    EXPECT_NEAR(s_plain, s_chop, 2.5) << "amp=" << amp;
  }
}

TEST(SiModulator, PreChopperTapHoldsSignalAtHalfRate) {
  const std::size_t n = 1 << 15;
  const double fclk = 2.45e6;
  const double f = si::dsp::coherent_frequency(2e3, fclk, n);
  const auto x = si::dsp::sine(n, 3e-6, f, fclk);
  SiSigmaDeltaModulator m(ideal_config(true));
  auto taps = m.run_with_taps(x);
  const auto pre = si::dsp::compute_power_spectrum(taps.pre_chopper, fclk);
  const auto post = si::dsp::compute_power_spectrum(taps.output, fclk);
  const double half = fclk / 2.0;
  // Tone power near fs/2 dominates pre-chopper; baseband dominates post.
  EXPECT_GT(pre.raw_band_sum(half - 5e3, half),
            10.0 * pre.raw_band_sum(500.0, 5e3));
  EXPECT_GT(post.raw_band_sum(500.0, 5e3),
            10.0 * post.raw_band_sum(half - 5e3, half));
}

TEST(SiModulator, OutputBitsAreBipolar) {
  SiSigmaDeltaModulator m(SiModulatorConfig{});
  const auto x = si::dsp::sine(1000, 3e-6, 2e-3, 1.0);
  for (double v : x) {
    const int y = m.step(v);
    EXPECT_TRUE(y == 1 || y == -1);
  }
}

TEST(SiModulator, DeterministicPerSeed) {
  SiModulatorConfig cfg;
  cfg.seed = 77;
  SiSigmaDeltaModulator a(cfg), b(cfg);
  const auto x = si::dsp::sine(500, 3e-6, 1e-3, 1.0);
  EXPECT_EQ(a.run(x), b.run(x));
}

TEST(SiModulator, ResetRestoresInitialState) {
  SiModulatorConfig cfg = ideal_config(false);
  SiSigmaDeltaModulator m(cfg);
  const auto x = si::dsp::sine(256, 3e-6, 1e-2, 1.0);
  const auto first = m.run(x);
  m.reset();
  const auto second = m.run(x);
  EXPECT_EQ(first, second);
}

TEST(SiModulator, OverloadsNearFullScale) {
  // SNDR collapses at 0 dBFS (paper Fig. 7's droop at the top).
  const std::size_t n = 1 << 14;
  const double fclk = 2.45e6;
  const double f = si::dsp::coherent_frequency(2e3, fclk, n);
  SiModulatorConfig cfg;
  cfg.seed = 5;
  SiSigmaDeltaModulator m6(cfg);
  const double at_m6 =
      sndr_of(m6.run(si::dsp::sine(n, 3e-6, f, fclk)), f);
  SiSigmaDeltaModulator m0(cfg);
  const double at_0 =
      sndr_of(m0.run(si::dsp::sine(n, 6e-6, f, fclk)), f);
  EXPECT_GT(at_m6, at_0 + 5.0);
}

TEST(SiModulator, InternalSwingsNearTwiceFullScale) {
  SiSigmaDeltaModulator m(ideal_config(false));
  const std::size_t n = 1 << 14;
  const double f = si::dsp::coherent_frequency(2e3, 2.45e6, n);
  m.run(si::dsp::sine(n, 5.5e-6, f, 2.45e6));
  EXPECT_LT(m.peak_state1(), 3.0 * 6e-6);
  EXPECT_LT(m.peak_state2(), 5.0 * 6e-6);
  EXPECT_GT(m.peak_state1(), 6e-6);
}

TEST(ScBaseline, NoiseFloorScalesWithCap) {
  ScBaselineModulator small(6e-6, 1e-12, 1.0, 1);
  ScBaselineModulator big(6e-6, 16e-12, 1.0, 1);
  EXPECT_NEAR(small.input_noise_rms() / big.input_noise_rms(), 4.0, 1e-9);
}

TEST(ScBaseline, BeatsSiNoiseFloor) {
  // 2 pF SC sampling noise is far below the SI 33 nA floor.
  ScBaselineModulator sc(6e-6, 2e-12, 1.0, 1);
  EXPECT_LT(sc.input_noise_rms(), 5e-9);
}


TEST(FirstOrder, IdleTonesAndDither) {
  // A small DC input on a noiseless first-order loop produces strong
  // discrete idle tones; quantizer dither whitens them.  (The paper's
  // chips get this dithering for free from the SI circuit noise.)
  auto inband_peak_over_floor = [](double dither) {
    si::dsm::SiModulatorConfig mc;
    mc.cell = si::cells::MemoryCellParams::ideal();
    mc.cell_mismatch_sigma = 0.0;
    mc.coeff_mismatch_sigma = 0.0;
    mc.dac_mismatch_sigma = 0.0;
    mc.cmff.mirror_mismatch_sigma = 0.0;
    mc.input_ci_a3 = 0.0;
    mc.quantizer_dither_rms = dither;
    si::dsm::FirstOrderSiModulator m(mc);
    const std::size_t n = 1 << 15;
    std::vector<double> x(n, 6e-6 / 64.0);  // small DC input
    auto y = m.run(x);
    for (auto& v : y) v *= 6e-6;
    const auto s = si::dsp::compute_power_spectrum(y, 2.45e6);
    // Peak bin vs median bin inside 1-30 kHz.
    const std::size_t klo = s.bin_of(1e3), khi = s.bin_of(30e3);
    std::vector<double> band(s.power.begin() + klo, s.power.begin() + khi);
    std::vector<double> sorted = band;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    const double peak = sorted.back();
    return 10.0 * std::log10(peak / (median + 1e-300));
  };
  const double tones = inband_peak_over_floor(0.0);
  const double dithered = inband_peak_over_floor(0.5e-6);
  EXPECT_GT(tones, 30.0);            // discrete tones tower over the floor
  EXPECT_LT(dithered, tones - 10.0); // dither knocks them down
}

TEST(FirstOrder, TracksDcInput) {
  si::dsm::SiModulatorConfig mc;
  mc.cell = si::cells::MemoryCellParams::ideal();
  mc.input_ci_a3 = 0.0;
  si::dsm::FirstOrderSiModulator m(mc);
  double acc = 0.0;
  const int n = 30000;
  for (int k = 0; k < n; ++k) acc += m.step(1.5e-6);
  EXPECT_NEAR(acc / n * 6e-6, 1.5e-6, 0.1e-6);
}

}  // namespace
