// Tests for the static electrical-rule checker: every rule's fire and
// no-fire case, the diagnostics engine (thresholds, suppression, text
// and JSON rendering), the deck-level lint with line attribution, and
// the pre-simulation gate in the DC / transient / AC entry points.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "erc/check.hpp"
#include "si/netlists.hpp"
#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/elements.hpp"
#include "spice/mosfet.hpp"
#include "spice/parser.hpp"
#include "spice/transient.hpp"

namespace {

using namespace si;
using erc::Diagnostic;
using erc::DiagnosticSink;
using erc::ErcOptions;
using erc::Severity;
using spice::Circuit;
using spice::NodeId;

std::size_t count_rule(const std::vector<Diagnostic>& diags,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

bool has_rule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return count_rule(diags, rule) > 0;
}

/// A clean resistor divider — must produce zero diagnostics.
Circuit divider() {
  Circuit c;
  const NodeId in = c.node("in"), mid = c.node("mid");
  c.add<spice::VoltageSource>("v1", in, spice::kGroundNode, 3.3);
  c.add<spice::Resistor>("r1", in, mid, 10e3);
  c.add<spice::Resistor>("r2", mid, spice::kGroundNode, 20e3);
  return c;
}

// ---------------------------------------------------------------------
// Generic SPICE pack
// ---------------------------------------------------------------------

TEST(ErcSpice, CleanDividerHasNoDiagnostics) {
  const Circuit c = divider();
  EXPECT_TRUE(erc::check(c).empty());
}

TEST(ErcSpice, NoGroundFires) {
  Circuit c;
  c.add<spice::Resistor>("r1", c.node("a"), c.node("b"), 1e3);
  const auto diags = erc::check(c);
  EXPECT_TRUE(has_rule(diags, "spice.no-ground"));
  EXPECT_TRUE(has_rule(diags, "spice.node-island"));
}

TEST(ErcSpice, NodeIslandFires) {
  Circuit c = divider();
  c.add<spice::Resistor>("r3", c.node("isla"), c.node("islb"), 1e3);
  c.add<spice::Resistor>("r4", c.node("isla"), c.node("islb"), 2e3);
  const auto diags = erc::check(c);
  ASSERT_EQ(count_rule(diags, "spice.node-island"), 1u);
  // One diagnostic per island, naming both member nodes.
  const auto it = std::find_if(diags.begin(), diags.end(), [](const auto& d) {
    return d.rule == "spice.node-island";
  });
  EXPECT_NE(it->message.find("isla"), std::string::npos);
  EXPECT_NE(it->message.find("islb"), std::string::npos);
  EXPECT_FALSE(has_rule(diags, "spice.no-ground"));
}

TEST(ErcSpice, FloatingGateFires) {
  Circuit c = divider();
  c.add<spice::Mosfet>("m1", spice::MosType::kNmos, c.node("in"),
                       c.node("float"), spice::kGroundNode,
                       spice::MosfetParams{});
  const auto diags = erc::check(c);
  ASSERT_EQ(count_rule(diags, "spice.floating-gate"), 1u);
}

TEST(ErcSpice, DiodeConnectedGateDoesNotFire) {
  Circuit c = divider();
  // Gate tied to drain: a diode-connected load, perfectly legal.
  c.add<spice::Mosfet>("m1", spice::MosType::kNmos, c.node("mid"),
                       c.node("mid"), spice::kGroundNode,
                       spice::MosfetParams{});
  EXPECT_FALSE(has_rule(erc::check(c), "spice.floating-gate"));
}

TEST(ErcSpice, DcFloatingFires) {
  Circuit c = divider();
  // Node between two series capacitors: no DC path, but not a gate.
  c.add<spice::Capacitor>("c1", c.node("in"), c.node("midcap"), 1e-12);
  c.add<spice::Capacitor>("c2", c.node("midcap"), spice::kGroundNode, 1e-12);
  const auto diags = erc::check(c);
  EXPECT_TRUE(has_rule(diags, "spice.dc-floating"));
  EXPECT_FALSE(has_rule(diags, "spice.floating-gate"));
}

TEST(ErcSpice, DanglingNodeFires) {
  Circuit c = divider();
  c.add<spice::Resistor>("r3", c.node("mid"), c.node("stub"), 1e3);
  const auto diags = erc::check(c);
  ASSERT_EQ(count_rule(diags, "spice.dangling-node"), 1u);
}

TEST(ErcSpice, UnusedNodeFires) {
  Circuit c = divider();
  c.node("orphan");  // created but never wired
  EXPECT_TRUE(has_rule(erc::check(c), "spice.unused-node"));
}

TEST(ErcSpice, DuplicateNameFires) {
  Circuit c = divider();
  c.add<spice::Resistor>("r1", c.node("mid"), spice::kGroundNode, 5e3);
  EXPECT_TRUE(has_rule(erc::check(c), "spice.duplicate-name"));
}

TEST(ErcSpice, ShortedSourceFires) {
  Circuit c = divider();
  c.add<spice::VoltageSource>("vshort", c.node("mid"), c.node("mid"), 1.0);
  EXPECT_TRUE(has_rule(erc::check(c), "spice.shorted-source"));
}

TEST(ErcSpice, SelfLoopFires) {
  Circuit c = divider();
  c.add<spice::Resistor>("rloop", c.node("mid"), c.node("mid"), 1e3);
  EXPECT_TRUE(has_rule(erc::check(c), "spice.self-loop"));
}

TEST(ErcSpice, ZeroValueResistorIsRejectedWithLineInfo) {
  // The Resistor constructor rejects R = 0; the deck lint must turn
  // that into a located parse-error diagnostic, not a loose exception.
  const auto report = erc::check_deck("V1 in 0 DC 1\nRz in 0 0\n");
  EXPECT_FALSE(report.parse_ok);
  ASSERT_EQ(report.sink.errors(), 1u);
  EXPECT_EQ(report.sink.diagnostics().front().rule, "spice.parse-error");
  EXPECT_EQ(report.sink.diagnostics().front().line, 2u);
}

TEST(ErcSpice, BadMosfetGeometryIsRejectedWithLineInfo) {
  const auto report = erc::check_deck(
      ".model m NMOS (KP=100u VTO=0.8)\nM1 d g 0 m W=0 L=1u\n");
  EXPECT_FALSE(report.parse_ok);
  ASSERT_EQ(report.sink.errors(), 1u);
  EXPECT_EQ(report.sink.diagnostics().front().rule, "spice.parse-error");
  EXPECT_EQ(report.sink.diagnostics().front().line, 2u);
}

TEST(ErcSpice, ZeroSourceIsNoteOnly) {
  Circuit c = divider();
  // The 0 V ammeter idiom must never block simulation.
  c.add<spice::VoltageSource>("vamm", c.node("mid"), c.node("mid2"), 0.0);
  c.add<spice::Resistor>("r3", c.node("mid2"), spice::kGroundNode, 1e3);
  const auto diags = erc::check(c);
  ASSERT_EQ(count_rule(diags, "spice.zero-source"), 1u);
  const auto it = std::find_if(diags.begin(), diags.end(), [](const auto& d) {
    return d.rule == "spice.zero-source";
  });
  EXPECT_EQ(it->severity, Severity::kNote);
  EXPECT_NO_THROW(erc::enforce(c));
}

// ---------------------------------------------------------------------
// SI pack
// ---------------------------------------------------------------------

/// Deck of a switch-sampled class-AB memory pair at the given supply.
std::string pair_deck(double vdd) {
  return "* class-AB memory pair\n"
         ".model nmem NMOS (KP=100u VTO=0.8 LAMBDA=0.02)\n"
         ".model pmem PMOS (KP=40u VTO=0.8 LAMBDA=0.02)\n"
         "Vdd vdd 0 DC " + std::to_string(vdd) + "\n"
         "MN d gn 0 nmem W=10u L=2u\n"
         "MP d gp vdd pmem W=25u L=2u\n"
         "SN gn d PULSE(0 3.3 0 10n 10n 480n 1u) 1k 1g\n"
         "SP gp d PULSE(0 3.3 0 10n 10n 480n 1u) 1k 1g\n"
         "Iin 0 d DC 8u\n";
}

TEST(ErcSi, SupplyMinFiresBelowEq12Minimum) {
  // 1.2 V < Vt_n + Vt_p + Vov = 0.8 + 0.8 + 0.1.
  const auto report = erc::check_deck(pair_deck(1.2));
  EXPECT_TRUE(has_rule(report.sink.diagnostics(), "si.supply-min"));
}

TEST(ErcSi, SupplyMinSilentAtPaperSupply) {
  const auto report = erc::check_deck(pair_deck(3.3));
  EXPECT_FALSE(has_rule(report.sink.diagnostics(), "si.supply-min"));
  EXPECT_TRUE(report.sink.ok());
}

TEST(ErcSi, ClassAbAsymmetryFires) {
  // KP_n/KP_p = 2.5 but W_p = W_n: betas 2.5x apart.
  const std::string deck =
      ".model nmem NMOS (KP=100u VTO=0.8)\n"
      ".model pmem PMOS (KP=40u VTO=0.8)\n"
      "Vdd vdd 0 DC 3.3\n"
      "MN d d 0 nmem W=10u L=2u\n"
      "MP d d vdd pmem W=10u L=2u\n"
      "Iin 0 d DC 8u\n";
  const auto report = erc::check_deck(deck);
  EXPECT_TRUE(has_rule(report.sink.diagnostics(), "si.classab-asymmetry"));
}

TEST(ErcSi, BalancedPairDoesNotFireAsymmetry) {
  const auto report = erc::check_deck(pair_deck(3.3));
  EXPECT_FALSE(
      has_rule(report.sink.diagnostics(), "si.classab-asymmetry"));
}

TEST(ErcSi, ClockOverlapFiresForSamePhaseCascade) {
  Circuit c;
  cells::netlists::MemoryPairOptions opt;
  auto p1 = cells::netlists::build_class_ab_memory_pair(c, opt, "a_");
  auto p2 = cells::netlists::build_class_ab_memory_pair(c, opt, "b_");
  // Transfer switch on the same phase the pairs sample on: the chain is
  // transparent instead of a z^-1 delay.
  const spice::TwoPhaseClock clk{opt.clock_period, 3.3, 0.0,
                                 opt.clock_period / 50.0,
                                 opt.clock_period / 20.0};
  c.add<spice::Switch>("sxfer", p1.d, p2.d, clk.phase1(), 1e3, 1e12);
  c.add<spice::CurrentSource>("iin", spice::kGroundNode, p1.d, 8e-6);
  EXPECT_TRUE(has_rule(erc::check(c), "si.clock-overlap"));
}

TEST(ErcSi, DelayStageClocksDoNotOverlap) {
  Circuit c;
  cells::netlists::DelayStageOptions opt;
  const auto h = cells::netlists::build_delay_stage(c, opt, "d_");
  c.add<spice::CurrentSource>("iin", spice::kGroundNode, h.in, 8e-6);
  EXPECT_FALSE(has_rule(erc::check(c), "si.clock-overlap"));
}

TEST(ErcSi, CmffBuilderIsCleanByConstruction) {
  Circuit c;
  cells::netlists::CmffOptions opt;
  cells::netlists::build_cmff(c, opt, "c_");
  EXPECT_FALSE(has_rule(erc::check(c), "si.cmff-half-size"));
}

TEST(ErcSi, CmffMismatchFires) {
  Circuit c;
  cells::netlists::CmffOptions opt;
  opt.extraction_mismatch = 0.2;  // 20% off the half-size ratio
  cells::netlists::build_cmff(c, opt, "c_");
  EXPECT_TRUE(has_rule(erc::check(c), "si.cmff-half-size"));
}

TEST(ErcSi, SiPackCanBeDisabled) {
  ErcOptions opt;
  opt.si_rules = false;
  const auto report = erc::check_deck(pair_deck(1.2), opt);
  EXPECT_FALSE(has_rule(report.sink.diagnostics(), "si.supply-min"));
}

TEST(ErcSi, CheckSupplyFilesRequirementViolation) {
  const cells::SupplyRequirement req =
      cells::minimum_supply(cells::SupplyDesign{}, 1.0);
  DiagnosticSink sink;
  erc::check_supply(req, req.minimum_volts - 0.1, sink);
  EXPECT_EQ(sink.errors(), 1u);
  EXPECT_EQ(sink.diagnostics().front().rule, "si.supply-min");

  DiagnosticSink ok;
  erc::check_supply(req, req.minimum_volts + 0.1, ok);
  EXPECT_TRUE(ok.diagnostics().empty());
}

// ---------------------------------------------------------------------
// Diagnostics engine
// ---------------------------------------------------------------------

TEST(ErcDiagnostics, SeverityThresholdDropsBelow) {
  DiagnosticSink sink;
  sink.set_min_severity(Severity::kWarning);
  sink.report({Severity::kNote, "x.note", "dropped", 0, "", ""});
  sink.report({Severity::kWarning, "x.warn", "kept", 0, "", ""});
  EXPECT_EQ(sink.diagnostics().size(), 1u);
  EXPECT_EQ(sink.notes(), 0u);
  EXPECT_EQ(sink.warnings(), 1u);
}

TEST(ErcDiagnostics, SuppressionDropsRule) {
  DiagnosticSink sink;
  sink.suppress("x.warn");
  sink.report({Severity::kWarning, "x.warn", "dropped", 0, "", ""});
  EXPECT_TRUE(sink.diagnostics().empty());
  EXPECT_TRUE(sink.is_suppressed("x.warn"));
}

TEST(ErcDiagnostics, TextFormat) {
  DiagnosticSink sink;
  sink.report({Severity::kError, "spice.zero-value", "resistor 'r1' bad", 7,
               "r1", "fix it"});
  EXPECT_EQ(sink.text(),
            "deck:7: error: [spice.zero-value] resistor 'r1' bad "
            "(fix: fix it)\n");
}

TEST(ErcDiagnostics, JsonGolden) {
  DiagnosticSink sink;
  sink.report({Severity::kWarning, "x.y", "say \"hi\"\n", 3, "r1", "do"});
  EXPECT_EQ(sink.json(),
            "{\"diagnostics\":[{\"severity\":\"warning\",\"rule\":\"x.y\","
            "\"message\":\"say \\\"hi\\\"\\n\",\"line\":3,"
            "\"element\":\"r1\",\"fix\":\"do\"}],"
            "\"notes\":0,\"warnings\":1,\"errors\":0}");
}

TEST(ErcDiagnostics, SortByLinePutsProgrammaticLast) {
  DiagnosticSink sink;
  sink.report({Severity::kNote, "a", "", 0, "", ""});
  sink.report({Severity::kNote, "b", "", 9, "", ""});
  sink.report({Severity::kNote, "c", "", 2, "", ""});
  sink.sort_by_line();
  EXPECT_EQ(sink.diagnostics()[0].rule, "c");
  EXPECT_EQ(sink.diagnostics()[1].rule, "b");
  EXPECT_EQ(sink.diagnostics()[2].rule, "a");
}

TEST(ErcDiagnostics, SuppressionViaOptions) {
  Circuit c = divider();
  c.add<spice::Resistor>("rloop", c.node("mid"), c.node("mid"), 1e3);
  EXPECT_TRUE(has_rule(erc::check(c), "spice.self-loop"));
  ErcOptions opt;
  opt.suppress.push_back("spice.self-loop");
  EXPECT_FALSE(has_rule(erc::check(c, opt), "spice.self-loop"));
}

// ---------------------------------------------------------------------
// Deck-level lint
// ---------------------------------------------------------------------

TEST(ErcDeck, LineAttributionSurvivesDirectiveStripping) {
  // The .tran directive sits between the cards; the shorted source is
  // on deck line 5 and the diagnostic must say so.
  const std::string deck =
      "V1 in 0 DC 1\n"
      "R1 in mid 1k\n"
      ".tran 1n 1u\n"
      ".probe v(mid)\n"
      "Vs mid mid DC 1\n"
      "R2 mid 0 1k\n";
  const auto report = erc::check_deck(deck);
  const auto& diags = report.sink.diagnostics();
  ASSERT_TRUE(has_rule(diags, "spice.shorted-source"));
  const auto it = std::find_if(diags.begin(), diags.end(), [](const auto& d) {
    return d.rule == "spice.shorted-source";
  });
  EXPECT_EQ(it->line, 5u);
  EXPECT_EQ(it->element, "vs");
}

TEST(ErcDeck, ErcDisableCommentSuppresses) {
  const std::string deck =
      "* erc-disable spice.self-loop spice.zero-source\n"
      "V1 in 0 DC 1\n"
      "Rloop in in 1k\n"
      "R1 in 0 1k\n";
  const auto report = erc::check_deck(deck);
  EXPECT_TRUE(report.sink.diagnostics().empty());
  EXPECT_TRUE(report.sink.ok());
}

TEST(ErcDeck, ParseFailureBecomesDiagnostic) {
  const auto report = erc::check_deck("R1 in 0 10kz\n");
  EXPECT_FALSE(report.parse_ok);
  ASSERT_EQ(report.sink.errors(), 1u);
  EXPECT_EQ(report.sink.diagnostics().front().rule, "spice.parse-error");
  EXPECT_EQ(report.sink.diagnostics().front().line, 1u);
}

TEST(ErcDeck, ProbeUnknownNodeFires) {
  const std::string deck =
      "V1 in 0 DC 1\n"
      "R1 in 0 1k\n"
      ".probe v(typo) i(r1)\n";
  const auto report = erc::check_deck(deck);
  // v(typo): undefined node; i(r1): not a voltage source.
  EXPECT_EQ(count_rule(report.sink.diagnostics(), "spice.probe-unknown"), 2u);
}

TEST(ErcDeck, ValidProbesDoNotFire) {
  const std::string deck =
      "V1 in 0 DC 1\n"
      "R1 in 0 1k\n"
      ".probe v(in) i(v1)\n"
      ".ac dec 10 1k 1meg\n";
  const auto report = erc::check_deck(deck);
  EXPECT_FALSE(has_rule(report.sink.diagnostics(), "spice.probe-unknown"));
}

// ---------------------------------------------------------------------
// Pre-simulation gate
// ---------------------------------------------------------------------

TEST(ErcGate, DcRejectsBadCircuitByDefault) {
  spice::ParseIndex index;
  Circuit c = spice::parse_netlist(pair_deck(1.2), &index);
  try {
    spice::dc_operating_point(c);
    FAIL() << "expected ErcError";
  } catch (const erc::ErcError& e) {
    EXPECT_TRUE(has_rule(e.diagnostics(), "si.supply-min"));
    EXPECT_NE(std::string(e.what()).find("si.supply-min"),
              std::string::npos);
  }
}

TEST(ErcGate, DcOptOutSimulatesAnyway) {
  Circuit c = spice::parse_netlist(pair_deck(1.2));
  spice::DcOptions opt;
  opt.erc_gate = false;
  EXPECT_NO_THROW(spice::dc_operating_point(c, opt));
}

TEST(ErcGate, TransientRejectsBadCircuitByDefault) {
  Circuit c = spice::parse_netlist(pair_deck(1.2));
  spice::TransientOptions opt;
  opt.dt = 1e-9;
  opt.t_stop = 10e-9;
  spice::Transient tr(c, opt);
  EXPECT_THROW(tr.run(), erc::ErcError);
}

TEST(ErcGate, TransientOptOutRuns) {
  Circuit c = spice::parse_netlist(pair_deck(1.2));
  spice::TransientOptions opt;
  opt.dt = 1e-9;
  opt.t_stop = 10e-9;
  opt.erc_gate = false;
  spice::Transient tr(c, opt);
  EXPECT_NO_THROW(tr.run());
}

TEST(ErcGate, AcRejectsBadCircuitByDefault) {
  Circuit c = spice::parse_netlist(pair_deck(1.2));
  EXPECT_THROW(spice::ac_analysis(c, {1e3}), erc::ErcError);
}

TEST(ErcGate, AcOptOutRuns) {
  Circuit c = spice::parse_netlist(pair_deck(1.2));
  spice::DcOptions dco;
  dco.erc_gate = false;
  spice::dc_operating_point(c, dco);  // capture an operating point
  spice::AcOptions aco;
  aco.erc_gate = false;
  EXPECT_NO_THROW(spice::ac_analysis(c, {1e3}, aco));
}

TEST(ErcGate, CleanCircuitPassesUnimpeded) {
  Circuit c = divider();
  EXPECT_NO_THROW(spice::dc_operating_point(c));
}

}  // namespace
