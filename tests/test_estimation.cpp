#include <gtest/gtest.h>

#include <cmath>

#include "dsp/estimation.hpp"
#include "dsp/filter.hpp"
#include "dsp/signal.hpp"
#include "dsp/window.hpp"

namespace {

TEST(Goertzel, RecoversToneAmplitudeAndPhase) {
  const std::size_t n = 4096;
  const double fs = 1e6;
  const double f = si::dsp::coherent_frequency(50e3, fs, n);
  const auto x = si::dsp::sine(n, 0.7, f, fs);
  const auto g = si::dsp::goertzel(x, f, fs);
  EXPECT_NEAR(g.amplitude(n), 0.7, 1e-6);
}

TEST(Goertzel, MatchesZeroOffTone) {
  const std::size_t n = 4096;
  const double fs = 1e6;
  const double f = si::dsp::coherent_frequency(50e3, fs, n);
  const double f_other = si::dsp::coherent_frequency(150e3, fs, n);
  const auto x = si::dsp::sine(n, 1.0, f, fs);
  EXPECT_LT(si::dsp::goertzel(x, f_other, fs).amplitude(n), 1e-9);
}

TEST(Goertzel, SelectiveInMultitone) {
  const std::size_t n = 8192;
  const double fs = 1e6;
  const double f1 = si::dsp::coherent_frequency(20e3, fs, n);
  const double f2 = si::dsp::coherent_frequency(90e3, fs, n);
  const auto x =
      si::dsp::multitone(n, {{0.5, f1, 0.2}, {0.25, f2, 1.1}}, fs);
  EXPECT_NEAR(si::dsp::goertzel(x, f1, fs).amplitude(n), 0.5, 1e-6);
  EXPECT_NEAR(si::dsp::goertzel(x, f2, fs).amplitude(n), 0.25, 1e-6);
}

TEST(Goertzel, RejectsBadInput) {
  EXPECT_THROW(si::dsp::goertzel({}, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(si::dsp::goertzel({1.0}, 1.0, 0.0), std::invalid_argument);
}

TEST(Welch, WhiteNoisePsdIsFlatAndCalibrated) {
  const std::size_t n = 1 << 17;
  const double fs = 1e6;
  const double sigma = 0.2;
  const auto x = si::dsp::white_noise(n, sigma, 21);
  const auto psd = si::dsp::welch_psd(x, fs, 1024);
  // Expected density: sigma^2 / (fs/2) one-sided.
  const double expected = sigma * sigma / (fs / 2.0);
  // Band-average over a few regions: flat within ~10%.
  for (double f0 : {50e3, 200e3, 400e3}) {
    const double p = psd.band_power(f0, f0 + 50e3) / 50e3;
    EXPECT_NEAR(p, expected, 0.1 * expected) << "f0=" << f0;
  }
  // Total power integrates back to sigma^2.
  EXPECT_NEAR(psd.band_power(0.0, fs / 2.0), sigma * sigma,
              0.05 * sigma * sigma);
}

TEST(Welch, AveragingSmoothsTheEstimate) {
  const double fs = 1.0;
  const auto x = si::dsp::white_noise(1 << 16, 1.0, 5);
  const auto one_seg = si::dsp::welch_psd(
      std::vector<double>(x.begin(), x.begin() + 1024), fs, 1024);
  const auto many = si::dsp::welch_psd(x, fs, 1024);
  auto rel_spread = [](const si::dsp::WelchPsd& p) {
    double m = 0.0, m2 = 0.0;
    const std::size_t lo = 10, hi = p.psd.size() - 10;
    for (std::size_t k = lo; k < hi; ++k) {
      m += p.psd[k];
      m2 += p.psd[k] * p.psd[k];
    }
    const double count = static_cast<double>(hi - lo);
    m /= count;
    return std::sqrt(m2 / count - m * m) / m;
  };
  EXPECT_LT(rel_spread(many), rel_spread(one_seg) / 3.0);
}

TEST(Welch, RejectsBadSegmentation) {
  std::vector<double> x(100, 0.0);
  EXPECT_THROW(si::dsp::welch_psd(x, 1.0, 1000), std::invalid_argument);
  EXPECT_THROW(si::dsp::welch_psd(x, 1.0, 100), std::invalid_argument);
}

TEST(Kaiser, ShapeAndLimits) {
  const auto w = si::dsp::make_kaiser(101, 9.0);
  EXPECT_NEAR(w[50], 1.0, 1e-12);  // unity center
  EXPECT_LT(w.front(), 0.01);      // strongly tapered edges
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
  // beta = 0 degenerates to rectangular.
  const auto rect = si::dsp::make_kaiser(32, 0.0);
  for (double v : rect) EXPECT_NEAR(v, 1.0, 1e-12);
  EXPECT_THROW(si::dsp::make_kaiser(0, 1.0), std::invalid_argument);
}

TEST(Kaiser, BesselI0KnownValues) {
  EXPECT_NEAR(si::dsp::bessel_i0(0.0), 1.0, 1e-15);
  EXPECT_NEAR(si::dsp::bessel_i0(1.0), 1.2660658, 1e-6);
  EXPECT_NEAR(si::dsp::bessel_i0(5.0), 27.239871, 1e-4);
}

TEST(Halfband, EveryOtherTapIsZero) {
  const auto h = si::dsp::design_halfband_fir(31);
  const std::size_t mid = h.size() / 2;
  EXPECT_NEAR(h[mid], 0.5, 1e-3);
  for (std::size_t i = 0; i < h.size(); ++i) {
    const auto k = static_cast<long long>(i) - static_cast<long long>(mid);
    if (k != 0 && k % 2 == 0) {
      EXPECT_DOUBLE_EQ(h[i], 0.0) << "tap " << i;
    }
  }
  EXPECT_THROW(si::dsp::design_halfband_fir(32), std::invalid_argument);
}

TEST(Halfband, SymmetricResponseAroundQuarterRate) {
  const auto h = si::dsp::design_halfband_fir(63);
  EXPECT_NEAR(si::dsp::fir_magnitude(h, 0.0), 1.0, 1e-9);
  EXPECT_NEAR(si::dsp::fir_magnitude(h, 0.25), 0.5, 1e-3);
  // Halfband symmetry: H(f) + H(0.5 - f) = 1.
  for (double f : {0.05, 0.1, 0.2}) {
    EXPECT_NEAR(si::dsp::fir_magnitude(h, f) +
                    si::dsp::fir_magnitude(h, 0.5 - f),
                1.0, 5e-3)
        << "f=" << f;
  }
}

TEST(Halfband, DecimatorKeepsBasebandTone) {
  const std::size_t n = 1 << 13;
  const auto x = si::dsp::sine(n, 1.0, 0.05, 1.0);
  const auto h = si::dsp::design_halfband_fir(63);
  const auto y = si::dsp::halfband_decimate(x, h);
  EXPECT_EQ(y.size(), n / 2);
  std::vector<double> mid(y.begin() + 100, y.end() - 100);
  EXPECT_NEAR(si::dsp::rms(mid), 1.0 / std::sqrt(2.0), 0.02);
}

}  // namespace
