// Partition invariants for the event-driven transient engine, fuzzed
// over randomized workload sizes: every MNA unknown lands in exactly one
// block, boundaries are Switch elements whose sides live in different
// non-rail blocks, and block 0 is the rail block.  Also pins the
// netlist-builder regressions that the partitioner depends on: count = 1
// builders must not alias nodes, and reusing a prefix must throw instead
// of silently merging circuits.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <stdexcept>
#include <vector>

#include "event/partition.hpp"
#include "si/netlists.hpp"
#include "spice/circuit.hpp"
#include "spice/elements.hpp"

namespace {

using namespace si::spice;
using namespace si::event;
namespace nets = si::cells::netlists;

void build_chain(Circuit& c, int stages, const std::string& prefix = "dl_") {
  nets::DelayStageOptions opt;
  const auto h = nets::build_delay_line_chain(c, stages, opt, prefix);
  const double T = opt.pair.clock_period;
  c.add<CurrentSource>(
      prefix + "Iin", c.ground(), h.in,
      std::make_unique<SineWave>(0.0, 5e-6, 1.0 / (8.0 * T)));
}

void build_modulator(Circuit& c, int sections) {
  nets::ModulatorCoreOptions opt;
  const auto h = nets::build_modulator_core(c, sections, opt, "mod_");
  const double T = opt.stage.pair.clock_period;
  c.add<CurrentSource>(
      "Iinp", c.ground(), h.in_p,
      std::make_unique<SineWave>(0.0, 4e-6, 1.0 / (8.0 * T)));
  c.add<CurrentSource>(
      "Iinm", c.ground(), h.in_m,
      std::make_unique<SineWave>(0.0, -4e-6, 1.0 / (8.0 * T)));
}

void add_supply(Circuit& c) {
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
}

/// Blocks of the non-rail terminal nodes of element `i`, deduplicated.
std::vector<int> terminal_blocks(const Circuit& c, const CircuitPartition& p,
                                 std::size_t i) {
  std::vector<int> bs;
  for (const auto& t : c.elements()[i]->terminals()) {
    if (t.node == kGroundNode) continue;
    const int b = p.node_block[static_cast<std::size_t>(t.node)];
    if (b > 0) bs.push_back(b);
  }
  std::sort(bs.begin(), bs.end());
  bs.erase(std::unique(bs.begin(), bs.end()), bs.end());
  return bs;
}

void check_invariants(const Circuit& c, const CircuitPartition& p) {
  const std::size_t n_blocks = p.block_count();
  ASSERT_GE(n_blocks, 2u) << "workload must split beyond the rail block";
  ASSERT_EQ(p.node_block.size(), c.node_count());
  ASSERT_EQ(p.unknown_block.size(), c.system_size());
  ASSERT_EQ(p.element_block.size(), c.elements().size());
  EXPECT_EQ(p.node_block[kGroundNode], 0) << "ground must be rail";

  // Every unknown appears in exactly one block's list, and that block
  // agrees with the unknown_block map.
  std::vector<int> seen(c.system_size(), 0);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    for (const int u : p.blocks[b].unknowns) {
      ASSERT_GE(u, 0);
      ASSERT_LT(static_cast<std::size_t>(u), c.system_size());
      ++seen[static_cast<std::size_t>(u)];
      EXPECT_EQ(p.unknown_block[static_cast<std::size_t>(u)],
                static_cast<int>(b))
          << "unknown " << u;
    }
  }
  for (std::size_t u = 0; u < seen.size(); ++u)
    EXPECT_EQ(seen[u], 1) << "unknown " << u << " owned by " << seen[u]
                          << " blocks";

  // Every element is owned by exactly one block.
  std::vector<int> owned(c.elements().size(), 0);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    for (const int e : p.blocks[b].elements) {
      ASSERT_GE(e, 0);
      ASSERT_LT(static_cast<std::size_t>(e), c.elements().size());
      ++owned[static_cast<std::size_t>(e)];
      EXPECT_EQ(p.element_block[static_cast<std::size_t>(e)],
                static_cast<int>(b))
          << "element " << e;
    }
  }
  for (std::size_t e = 0; e < owned.size(); ++e)
    EXPECT_EQ(owned[e], 1) << c.elements()[e]->name();

  // Boundaries are Switches bridging two distinct non-rail blocks, owned
  // by the lower-numbered side.
  std::vector<unsigned char> is_boundary(c.elements().size(), 0);
  for (const auto& bd : p.boundaries) {
    ASSERT_GE(bd.element, 0);
    ASSERT_LT(static_cast<std::size_t>(bd.element), c.elements().size());
    is_boundary[static_cast<std::size_t>(bd.element)] = 1;
    EXPECT_NE(dynamic_cast<const Switch*>(
                  c.elements()[static_cast<std::size_t>(bd.element)].get()),
              nullptr)
        << "boundary element must be a Switch";
    EXPECT_GT(bd.block_a, 0);
    EXPECT_GT(bd.block_b, 0);
    EXPECT_NE(bd.block_a, bd.block_b);
    EXPECT_EQ(p.element_block[static_cast<std::size_t>(bd.element)],
              std::min(bd.block_a, bd.block_b));
  }

  // Completeness: a non-boundary element's non-rail terminals must all
  // live in one block — its owning block, unless every terminal is rail.
  for (std::size_t i = 0; i < c.elements().size(); ++i) {
    const auto bs = terminal_blocks(c, p, i);
    if (is_boundary[i]) {
      EXPECT_EQ(bs.size(), 2u) << c.elements()[i]->name();
      continue;
    }
    EXPECT_LE(bs.size(), 1u)
        << c.elements()[i]->name()
        << ": non-boundary element straddles blocks";
    if (bs.size() == 1)
      EXPECT_EQ(p.element_block[i], bs[0]) << c.elements()[i]->name();
    else
      EXPECT_EQ(p.element_block[i], 0) << c.elements()[i]->name();
  }
}

TEST(EventPartition, DelayLineChainInvariantsFuzzed) {
  std::mt19937 rng(20260807u);
  std::uniform_int_distribution<int> stages_dist(1, 6);
  for (int iter = 0; iter < 6; ++iter) {
    const int stages = stages_dist(rng);
    Circuit c;
    add_supply(c);
    build_chain(c, stages);
    const auto p = partition_circuit(c);
    SCOPED_TRACE("stages=" + std::to_string(stages));
    check_invariants(c, p);
    // Each stage contributes at least one switch-separated island.
    EXPECT_GE(p.block_count(), static_cast<std::size_t>(stages) + 1);
    EXPECT_FALSE(p.boundaries.empty());
  }
}

TEST(EventPartition, ModulatorCoreInvariantsFuzzed) {
  std::mt19937 rng(19951106u);
  std::uniform_int_distribution<int> sections_dist(1, 4);
  for (int iter = 0; iter < 4; ++iter) {
    const int sections = sections_dist(rng);
    Circuit c;
    add_supply(c);
    build_modulator(c, sections);
    const auto p = partition_circuit(c);
    SCOPED_TRACE("sections=" + std::to_string(sections));
    check_invariants(c, p);
    EXPECT_GE(p.block_count(), static_cast<std::size_t>(sections) + 1);
  }
}

// Regression: count = 1 builders used to alias the chain's input and
// output nodes through prefix reuse; the partitioner then saw a single
// degenerate block.  A one-stage chain and a one-section modulator must
// partition like their larger siblings.
TEST(EventPartition, CountOneBuildersDoNotAliasNodes) {
  {
    Circuit c;
    add_supply(c);
    build_chain(c, 1);
    const auto p = partition_circuit(c);
    check_invariants(c, p);
    EXPECT_GE(p.block_count(), 3u);
  }
  {
    Circuit c;
    add_supply(c);
    build_modulator(c, 1);
    const auto p = partition_circuit(c);
    check_invariants(c, p);
    EXPECT_GE(p.block_count(), 4u);
  }
}

// Reusing a netlist prefix in one circuit would silently alias nodes
// between the two instances; the builders must refuse instead.
TEST(EventPartition, DuplicatePrefixThrowsInsteadOfAliasing) {
  Circuit c;
  add_supply(c);
  build_chain(c, 1, "dup_");
  EXPECT_THROW(
      {
        nets::DelayStageOptions opt;
        nets::build_delay_line_chain(c, 1, opt, "dup_");
      },
      std::invalid_argument);
}

}  // namespace
