// Event-engine parity and latency-exploitation assertions: the
// event-driven multi-rate engine (src/event) must reproduce the
// monolithic engine's waveforms on the paper's Table 1 / Table 2
// workloads byte-identically at the %.6g precision the bench tables
// emit, honor the SI_TRANSIENT override, skip work on a quiescent
// DC-hold run, and fall back to the monolithic engine under adaptive
// stepping.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "obs/telemetry.hpp"
#include "si/netlists.hpp"
#include "spice/transient.hpp"

namespace {

using namespace si::spice;
using namespace si::cells::netlists;

std::string fmt6(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// The parity contract between the engines: identical time grids and,
/// per sample, agreement at %.6g (the scoped Dirichlet restriction is
/// algebraically exact; latency holds may differ below the quiescence
/// tolerance, far under the 1e-6 relative granularity of %.6g).
void expect_engine_parity(const TransientResult& mono,
                          const TransientResult& event) {
  ASSERT_EQ(mono.time.size(), event.time.size());
  ASSERT_EQ(mono.signals.size(), event.signals.size());
  for (std::size_t k = 0; k < mono.time.size(); ++k)
    ASSERT_DOUBLE_EQ(mono.time[k], event.time[k]) << "sample " << k;
  for (const auto& [label, mv] : mono.signals) {
    const auto& ev = event.signal(label);
    ASSERT_EQ(mv.size(), ev.size()) << label;
    for (std::size_t k = 0; k < mv.size(); ++k) {
      EXPECT_NEAR(mv[k], ev[k], 2e-6) << label << " sample " << k;
      EXPECT_EQ(fmt6(mv[k]), fmt6(ev[k])) << label << " sample " << k;
    }
  }
}

TransientResult run_table1_chain(TransientEngine engine) {
  Circuit c;
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  DelayStageOptions opt;
  const auto h = build_delay_line_chain(c, 3, opt, "dl_");
  const double T = opt.pair.clock_period;
  c.add<CurrentSource>(
      "Iin", c.ground(), h.in,
      std::make_unique<SineWave>(0.0, 5e-6, 1.0 / (8.0 * T), 0.0));
  TransientOptions topt;
  topt.t_stop = 2.0 * T;
  topt.dt = T / 200.0;
  topt.erc_gate = false;
  topt.engine = engine;
  Transient tr(c, topt);
  tr.probe_voltage(c.node_name(h.in));
  tr.probe_voltage(c.node_name(h.out));
  return tr.run();
}

TransientResult run_table2_modulator(TransientEngine engine,
                                     bool dc_hold = false,
                                     double periods = 1.0,
                                     double quiescent_tol = 1e-8) {
  Circuit c;
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  ModulatorCoreOptions opt;
  const auto h = build_modulator_core(c, 1, opt, "mod_");
  const double T = opt.stage.pair.clock_period;
  if (dc_hold) {
    c.add<CurrentSource>("Iinp", c.ground(), h.in_p,
                         std::make_unique<DcWave>(1e-6));
    c.add<CurrentSource>("Iinm", c.ground(), h.in_m,
                         std::make_unique<DcWave>(-1e-6));
  } else {
    c.add<CurrentSource>(
        "Iinp", c.ground(), h.in_p,
        std::make_unique<SineWave>(0.0, 4e-6, 1.0 / (8.0 * T), 0.0));
    c.add<CurrentSource>(
        "Iinm", c.ground(), h.in_m,
        std::make_unique<SineWave>(0.0, -4e-6, 1.0 / (8.0 * T), 0.0));
  }
  TransientOptions topt;
  topt.t_stop = periods * T;
  topt.dt = T / 200.0;
  topt.erc_gate = false;
  topt.engine = engine;
  topt.event_quiescent_tol = quiescent_tol;
  Transient tr(c, topt);
  tr.probe_voltage(c.node_name(h.out_p));
  tr.probe_voltage(c.node_name(h.out_m));
  return tr.run();
}

TEST(EventParity, Table1DelayLineTransient) {
  const auto mono = run_table1_chain(TransientEngine::kMonolithic);
  const auto event = run_table1_chain(TransientEngine::kEvent);
  EXPECT_GT(event.event_blocks, 2u);
  EXPECT_GT(event.event_block_solves, 0u);
  EXPECT_EQ(mono.event_blocks, 0u);
  expect_engine_parity(mono, event);
}

TEST(EventParity, Table2ModulatorTransient) {
  const auto mono = run_table2_modulator(TransientEngine::kMonolithic);
  const auto event = run_table2_modulator(TransientEngine::kEvent);
  EXPECT_GT(event.event_blocks, 2u);
  expect_engine_parity(mono, event);
}

/// SI_TRANSIENT selects the engine when the request is kAuto; an
/// explicit request wins over the environment.
TEST(EventEngine, EnvOverrideSelectsEngine) {
  std::string saved;
  bool had = false;
  if (const char* v = std::getenv("SI_TRANSIENT")) {
    saved = v;
    had = true;
  }

  setenv("SI_TRANSIENT", "event", 1);
  EXPECT_EQ(transient_engine_from_env(), TransientEngine::kEvent);
  EXPECT_EQ(resolve_engine(TransientEngine::kAuto, false),
            TransientEngine::kEvent);
  EXPECT_EQ(resolve_engine(TransientEngine::kMonolithic, false),
            TransientEngine::kMonolithic);
  const auto via_env = run_table1_chain(TransientEngine::kAuto);
  EXPECT_GT(via_env.event_blocks, 0u) << "kAuto must follow SI_TRANSIENT";

  setenv("SI_TRANSIENT", "monolithic", 1);
  EXPECT_EQ(transient_engine_from_env(), TransientEngine::kMonolithic);
  const auto mono = run_table1_chain(TransientEngine::kAuto);
  EXPECT_EQ(mono.event_blocks, 0u);

  if (had)
    setenv("SI_TRANSIENT", saved.c_str(), 1);
  else
    unsetenv("SI_TRANSIENT");
}

/// Adaptive runs are fixed to the monolithic engine: the event engine
/// works a fixed grid, so resolve_engine must never hand it an adaptive
/// request, even when SI_TRANSIENT asks for it.
TEST(EventEngine, AdaptiveResolvesMonolithic) {
  EXPECT_EQ(resolve_engine(TransientEngine::kEvent, true),
            TransientEngine::kMonolithic);
  EXPECT_EQ(resolve_engine(TransientEngine::kAuto, true),
            TransientEngine::kMonolithic);
}

/// The latency-exploitation scenario: with DC inputs the modulator
/// settles into a steady state where re-sampling reproduces the held
/// values, so the engine must start skipping block solves — and whole
/// steps — while staying within the quiescence tolerance of the
/// monolithic waveforms.
TEST(EventEngine, DcHoldExploitsLatency) {
  const double periods = 20.0;
  const auto mono = run_table2_modulator(TransientEngine::kMonolithic,
                                         /*dc_hold=*/true, periods);
  const auto event = run_table2_modulator(TransientEngine::kEvent,
                                          /*dc_hold=*/true, periods,
                                          /*quiescent_tol=*/1e-6);
  EXPECT_GT(event.event_block_skips, 0u) << "no block ever went latent";
  EXPECT_GT(event.event_steps_skipped, 0u)
      << "no fully-latent step was skipped";

  ASSERT_EQ(mono.time.size(), event.time.size());
  double maxerr = 0.0;
  for (const auto& [label, mv] : mono.signals) {
    const auto& ev = event.signal(label);
    ASSERT_EQ(mv.size(), ev.size()) << label;
    for (std::size_t k = 0; k < mv.size(); ++k)
      maxerr = std::max(maxerr, std::abs(mv[k] - ev[k]));
  }
  // Held-block error is bounded by the geometric settling tail the
  // quiescence rule budgets for (see DESIGN.md).
  EXPECT_LT(maxerr, 1e-5);
}

/// The event.* telemetry counters must advance across an event-engine
/// run so the bench-smoke schema check has something to validate.
TEST(EventEngine, TelemetryCountersAdvance) {
  si::obs::set_enabled(true);
  si::obs::reset();
  (void)run_table1_chain(TransientEngine::kEvent);
  EXPECT_GE(si::obs::counter("event.runs").value(), 1u);
  EXPECT_GT(si::obs::counter("event.block_solves").value(), 0u);
  EXPECT_GT(si::obs::counter("event.scoped_solves").value(), 0u);
  EXPECT_GT(si::obs::counter("event.events_dispatched").value(), 0u);
  EXPECT_EQ(si::obs::counter("event.full_activations").value(), 0u);
  si::obs::reset();
  si::obs::set_enabled(false);
}

}  // namespace
