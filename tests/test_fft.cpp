#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dsp/fft.hpp"
#include "dsp/signal.hpp"

namespace {

using si::dsp::cplx;

TEST(Fft, PowerOfTwoHelpers) {
  EXPECT_TRUE(si::dsp::is_power_of_two(1));
  EXPECT_TRUE(si::dsp::is_power_of_two(1024));
  EXPECT_FALSE(si::dsp::is_power_of_two(0));
  EXPECT_FALSE(si::dsp::is_power_of_two(96));
  EXPECT_EQ(si::dsp::next_power_of_two(1000), 1024u);
  EXPECT_EQ(si::dsp::next_power_of_two(1024), 1024u);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<cplx> x(12);
  EXPECT_THROW(si::dsp::fft_inplace(x), std::invalid_argument);
}

TEST(Fft, DeltaTransformsToFlat) {
  std::vector<cplx> x(8, cplx(0.0, 0.0));
  x[0] = cplx(1.0, 0.0);
  auto y = si::dsp::fft(x);
  for (const auto& v : y) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 256;
  const int k0 = 17;
  std::vector<cplx> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = 2.0 * std::numbers::pi * k0 * static_cast<double>(i) /
                     static_cast<double>(n);
    x[i] = cplx(std::cos(a), std::sin(a));
  }
  auto y = si::dsp::fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == static_cast<std::size_t>(k0)) {
      EXPECT_NEAR(std::abs(y[k]), static_cast<double>(n), 1e-8);
    } else {
      EXPECT_LT(std::abs(y[k]), 1e-8);
    }
  }
}

TEST(Fft, RoundTripIdentity) {
  const std::size_t n = 128;
  std::vector<cplx> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = cplx(std::sin(0.1 * static_cast<double>(i)),
                std::cos(0.07 * static_cast<double>(i)));
  auto y = si::dsp::ifft(si::dsp::fft(x));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_LT(std::abs(y[i] - x[i]), 1e-12);
}

TEST(Fft, ParsevalProperty) {
  const std::size_t n = 512;
  auto noise = si::dsp::white_noise(n, 1.0, 7);
  std::vector<cplx> x(noise.begin(), noise.end());
  auto y = si::dsp::fft(x);
  double time_energy = 0.0, freq_energy = 0.0;
  for (double v : noise) time_energy += v * v;
  for (const auto& v : y) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-9 * time_energy);
}

TEST(Fft, RfftMatchesFullFft) {
  const std::size_t n = 64;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(0.3 * static_cast<double>(i)) +
           0.5 * std::cos(0.9 * static_cast<double>(i));
  auto half = si::dsp::rfft(x);
  std::vector<cplx> xc(x.begin(), x.end());
  auto full = si::dsp::fft(xc);
  ASSERT_EQ(half.size(), n / 2 + 1);
  for (std::size_t k = 0; k < half.size(); ++k)
    EXPECT_LT(std::abs(half[k] - full[k]), 1e-12);
}

TEST(Fft, LinearityProperty) {
  const std::size_t n = 64;
  auto a = si::dsp::white_noise(n, 1.0, 1);
  auto b = si::dsp::white_noise(n, 1.0, 2);
  std::vector<cplx> xa(a.begin(), a.end()), xb(b.begin(), b.end()), xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = xa[i] + 2.0 * xb[i];
  auto ya = si::dsp::fft(xa);
  auto yb = si::dsp::fft(xb);
  auto ys = si::dsp::fft(xs);
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_LT(std::abs(ys[k] - (ya[k] + 2.0 * yb[k])), 1e-9);
}

}  // namespace
