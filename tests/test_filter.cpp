#include <gtest/gtest.h>

#include <cmath>

#include "dsp/filter.hpp"
#include "dsp/signal.hpp"

namespace {

TEST(Filter, LowpassDesignUnityDcGain) {
  const auto h = si::dsp::design_lowpass_fir(101, 0.1);
  double sum = 0.0;
  for (double v : h) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(si::dsp::fir_magnitude(h, 0.0), 1.0, 1e-12);
}

TEST(Filter, LowpassPassesAndStops) {
  const auto h = si::dsp::design_lowpass_fir(201, 0.1);
  EXPECT_NEAR(si::dsp::fir_magnitude(h, 0.02), 1.0, 0.01);
  EXPECT_LT(si::dsp::fir_magnitude(h, 0.2), 1e-3);
  EXPECT_LT(si::dsp::fir_magnitude(h, 0.4), 1e-3);
}

TEST(Filter, DesignRejectsBadArgs) {
  EXPECT_THROW(si::dsp::design_lowpass_fir(100, 0.1), std::invalid_argument);
  EXPECT_THROW(si::dsp::design_lowpass_fir(101, 0.6), std::invalid_argument);
  EXPECT_THROW(si::dsp::design_lowpass_fir(101, 0.0), std::invalid_argument);
}

TEST(Filter, FirFilterRemovesHighFrequencyTone) {
  const std::size_t n = 4096;
  const double fs = 1.0;
  auto x = si::dsp::multitone(
      n, {{1.0, 0.01, 0.0}, {1.0, 0.3, 0.0}}, fs);
  const auto h = si::dsp::design_lowpass_fir(201, 0.05);
  const auto y = si::dsp::fir_filter(h, x);
  // Compare rms in the steady-state middle region.
  std::vector<double> mid(y.begin() + 500, y.end() - 500);
  EXPECT_NEAR(si::dsp::rms(mid), 1.0 / std::sqrt(2.0), 0.02);
}

TEST(Filter, DecimateKeepsLowBandSignal) {
  const std::size_t n = 8192;
  auto x = si::dsp::sine(n, 1.0, 0.01, 1.0);
  const auto h = si::dsp::design_lowpass_fir(127, 0.1);
  const auto y = si::dsp::decimate(x, 4, h);
  EXPECT_EQ(y.size(), n / 4);
  std::vector<double> mid(y.begin() + 100, y.end() - 100);
  EXPECT_NEAR(si::dsp::rms(mid), 1.0 / std::sqrt(2.0), 0.02);
}

TEST(Filter, DecimateRejectsZeroFactor) {
  std::vector<double> x(16, 0.0);
  EXPECT_THROW(si::dsp::decimate(x, 0, {1.0}), std::invalid_argument);
}

TEST(Filter, CicUnityDcGain) {
  si::dsp::CicDecimator cic(3, 8);
  std::vector<double> x(800, 1.0);
  const auto y = cic.process(x);
  ASSERT_EQ(y.size(), 100u);
  // After the filter fills, DC gain is exactly 1.
  EXPECT_NEAR(y.back(), 1.0, 1e-12);
}

TEST(Filter, CicSuppressesNearFsOverM) {
  // A tone near the first CIC null (fs / M) is strongly attenuated.
  si::dsp::CicDecimator cic(3, 16);
  const std::size_t n = 1 << 14;
  auto x = si::dsp::sine(n, 1.0, 1.0 / 16.0, 1.0);
  const auto y = cic.process(x);
  std::vector<double> tail(y.begin() + 16, y.end());
  EXPECT_LT(si::dsp::rms(tail), 1e-3);
}

TEST(Filter, CicResetClearsState) {
  si::dsp::CicDecimator cic(2, 4);
  (void)cic.process(si::dsp::white_noise(64, 1.0, 1));
  cic.reset();
  const auto y = cic.process(std::vector<double>(64, 0.0));
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Filter, CicValidatesArgs) {
  EXPECT_THROW(si::dsp::CicDecimator(0, 4), std::invalid_argument);
  EXPECT_THROW(si::dsp::CicDecimator(2, 0), std::invalid_argument);
  si::dsp::CicDecimator ok(4, 64);
  EXPECT_EQ(ok.order(), 4);
  EXPECT_EQ(ok.decimation(), 64u);
  EXPECT_DOUBLE_EQ(ok.raw_gain(), std::pow(64.0, 4.0));
}


TEST(Resample, IdentityWhenRatioOne) {
  const auto x = si::dsp::sine(256, 1.0, 0.01, 1.0);
  const auto y = si::dsp::resample(x, {1, 1, 24});
  EXPECT_EQ(y, x);
}

TEST(Resample, UpsampleByTwoPreservesTone) {
  const std::size_t n = 4096;
  const double f = 0.02;  // cycles per input sample
  const auto x = si::dsp::sine(n, 1.0, f, 1.0);
  const auto y = si::dsp::resample(x, {2, 1, 32});
  EXPECT_EQ(y.size(), 2 * n);
  // The tone now sits at f/2 of the output rate with the same amplitude.
  std::vector<double> mid(y.begin() + 500, y.end() - 500);
  EXPECT_NEAR(si::dsp::rms(mid), 1.0 / std::sqrt(2.0), 0.02);
}

TEST(Resample, DownsampleByThreePreservesBasebandTone) {
  const std::size_t n = 1 << 13;
  const auto x = si::dsp::sine(n, 1.0, 0.01, 1.0);
  const auto y = si::dsp::resample(x, {1, 3, 32});
  EXPECT_EQ(y.size(), n / 3);
  std::vector<double> mid(y.begin() + 200, y.end() - 200);
  EXPECT_NEAR(si::dsp::rms(mid), 1.0 / std::sqrt(2.0), 0.03);
}

TEST(Resample, RationalThreeHalves) {
  const std::size_t n = 1 << 12;
  const auto x = si::dsp::sine(n, 1.0, 0.01, 1.0);
  const auto y = si::dsp::resample(x, {3, 2, 32});
  EXPECT_EQ(y.size(), n * 3 / 2);
  // Tone frequency in output samples: 0.01 * 2/3; sample the waveform
  // peak amplitude from the middle.
  std::vector<double> mid(y.begin() + 300, y.end() - 300);
  EXPECT_NEAR(si::dsp::rms(mid), 1.0 / std::sqrt(2.0), 0.03);
}

TEST(Resample, DownsampleRejectsOutOfBandTone) {
  // A tone above the output Nyquist must be filtered out, not aliased.
  const std::size_t n = 1 << 13;
  const auto x = si::dsp::sine(n, 1.0, 0.3, 1.0);  // 0.3 > 0.5/2
  const auto y = si::dsp::resample(x, {1, 2, 48});
  std::vector<double> mid(y.begin() + 300, y.end() - 300);
  EXPECT_LT(si::dsp::rms(mid), 0.02);
}

TEST(Resample, RejectsZeroFactors) {
  EXPECT_THROW(si::dsp::resample({1.0, 2.0}, {0, 1, 24}),
               std::invalid_argument);
  EXPECT_THROW(si::dsp::resample({1.0, 2.0}, {1, 0, 24}),
               std::invalid_argument);
}

}  // namespace
