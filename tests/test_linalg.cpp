#include <gtest/gtest.h>

#include <complex>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace {

using si::linalg::ComplexMatrix;
using si::linalg::ComplexVector;
using si::linalg::LuFactorization;
using si::linalg::Matrix;
using si::linalg::SingularMatrixError;
using si::linalg::Vector;

TEST(Matrix, IdentityAndIndexing) {
  Matrix m = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 5.0);
  EXPECT_THROW(m.at(3, 0), std::out_of_range);
}

TEST(Matrix, ArithmeticAndShapeChecks) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  Matrix b = Matrix::identity(2);
  Matrix c = a + b;
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 5.0);
  Matrix d = a * b;
  EXPECT_DOUBLE_EQ(d(1, 0), 3.0);
  Matrix wrong(3, 2);
  EXPECT_THROW(a += wrong, std::invalid_argument);
  EXPECT_THROW(wrong * wrong, std::invalid_argument);
}

TEST(Matrix, MultiplyVector) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  Vector x{1.0, 1.0, 1.0};
  Vector y = a.multiply(x);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Matrix, Transpose) {
  Matrix a(2, 3);
  a(0, 2) = 7.0;
  Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a(3, 3);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(0, 2) = -1;
  a(1, 0) = -3;
  a(1, 1) = -1;
  a(1, 2) = 2;
  a(2, 0) = -2;
  a(2, 1) = 1;
  a(2, 2) = 2;
  Vector b{8, -11, -3};
  Vector x = si::linalg::solve(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  EXPECT_NEAR(x[2], -1.0, 1e-12);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  Vector b{3.0, 4.0};
  Vector x = si::linalg::solve(a, b);
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(LuFactorization<double>{a}, SingularMatrixError);
}

TEST(Lu, Determinant) {
  Matrix a(2, 2);
  a(0, 0) = 3;
  a(0, 1) = 1;
  a(1, 0) = 2;
  a(1, 1) = 5;
  LuFactorization<double> lu(a);
  EXPECT_NEAR(lu.determinant(), 13.0, 1e-12);
}

TEST(Lu, ReusableFactorizationMultipleRhs) {
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  LuFactorization<double> lu(a);
  Vector x1 = lu.solve({1.0, 0.0});
  Vector x2 = lu.solve({0.0, 1.0});
  // A * x1 = e1, A * x2 = e2.
  EXPECT_NEAR(4 * x1[0] + 1 * x1[1], 1.0, 1e-12);
  EXPECT_NEAR(1 * x1[0] + 3 * x1[1], 0.0, 1e-12);
  EXPECT_NEAR(4 * x2[0] + 1 * x2[1], 0.0, 1e-12);
  EXPECT_NEAR(1 * x2[0] + 3 * x2[1], 1.0, 1e-12);
}

TEST(Lu, ComplexSolve) {
  using cd = std::complex<double>;
  ComplexMatrix a(2, 2);
  a(0, 0) = cd(1, 1);
  a(0, 1) = cd(0, -1);
  a(1, 0) = cd(2, 0);
  a(1, 1) = cd(1, -1);
  ComplexVector b{cd(1, 0), cd(0, 1)};
  ComplexVector x = si::linalg::solve(a, b);
  // Verify residual.
  const cd r0 = a(0, 0) * x[0] + a(0, 1) * x[1] - b[0];
  const cd r1 = a(1, 0) * x[0] + a(1, 1) * x[1] - b[1];
  EXPECT_LT(std::abs(r0), 1e-12);
  EXPECT_LT(std::abs(r1), 1e-12);
}

TEST(Lu, RandomizedResidualProperty) {
  // Property: for random well-conditioned systems, ||Ax - b|| is tiny.
  std::uint64_t state = 42;
  auto next = [&]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>((state >> 11) & 0xFFFFF) / 1048576.0 - 0.5;
  };
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 8;
    Matrix a(n, n);
    Vector b(n);
    for (std::size_t i = 0; i < n; ++i) {
      b[i] = next();
      for (std::size_t j = 0; j < n; ++j) a(i, j) = next();
      a(i, i) += 4.0;  // diagonally dominant => well-conditioned
    }
    Vector x = si::linalg::solve(a, b);
    Vector r = si::linalg::subtract(a.multiply(x), b);
    EXPECT_LT(si::linalg::norm_inf(r), 1e-10);
  }
}

TEST(VectorOps, NormsDotAxpy) {
  Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(si::linalg::norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(si::linalg::norm_inf(a), 4.0);
  Vector b{1.0, 2.0};
  EXPECT_DOUBLE_EQ(si::linalg::dot(a, b), 11.0);
  Vector c = si::linalg::axpy(a, 2.0, b);
  EXPECT_DOUBLE_EQ(c[0], 5.0);
  EXPECT_DOUBLE_EQ(c[1], 8.0);
  Vector wrong{1.0};
  EXPECT_THROW(si::linalg::dot(a, wrong), std::invalid_argument);
}

}  // namespace
