#include <gtest/gtest.h>

#include <cmath>

#include "dsm/linear_model.hpp"

namespace {

using si::dsm::LoopCoefficients;

TEST(LinearModel, ExactNtfIsSecondDifference) {
  const auto h = si::dsm::ntf_impulse(LoopCoefficients::exact_eq3(), 16);
  ASSERT_EQ(h.size(), 16u);
  EXPECT_NEAR(h[0], 1.0, 1e-12);
  EXPECT_NEAR(h[1], -2.0, 1e-12);
  EXPECT_NEAR(h[2], 1.0, 1e-12);
  for (std::size_t k = 3; k < h.size(); ++k)
    EXPECT_NEAR(h[k], 0.0, 1e-12) << "k=" << k;
}

TEST(LinearModel, ExactStfIsDoubleDelay) {
  const auto h = si::dsm::stf_impulse(LoopCoefficients::exact_eq3(), 16);
  EXPECT_NEAR(h[0], 0.0, 1e-12);
  EXPECT_NEAR(h[1], 0.0, 1e-12);
  EXPECT_NEAR(h[2], 1.0, 1e-12);
  for (std::size_t k = 3; k < h.size(); ++k)
    EXPECT_NEAR(h[k], 0.0, 1e-12) << "k=" << k;
}

TEST(LinearModel, NtfDcGainIsZeroForAnyStableCoefficients) {
  // Property: any coefficient set with two integrators has NTF zeros at
  // DC — the impulse response must sum to ~0.
  for (double b2 : {0.25, 0.5, 1.0}) {
    LoopCoefficients k{0.5, 0.5, b2, 2.0 * 0.5 * b2};
    const auto h = si::dsm::ntf_impulse(k, 4096);
    double sum = 0.0;
    for (double v : h) sum += v;
    EXPECT_NEAR(sum, 0.0, 1e-6) << "b2=" << b2;
  }
}

TEST(LinearModel, StfDcGainIsUnityForMatchedCoefficients) {
  // X -> Y at DC: sum of STF impulse = b1*b2 / (a1*b2) = b1/a1.
  LoopCoefficients k{0.5, 0.5, 0.25, 0.25};
  const auto h = si::dsm::stf_impulse(k, 8192);
  double sum = 0.0;
  for (double v : h) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(LinearModel, TheoreticalSqnrFormula) {
  // Second order at OSR 128: 10*log10(1.5*5*128^5/pi^4) ~ 94.2 dB.
  EXPECT_NEAR(si::dsm::theoretical_peak_sqnr_db(2, 128.0), 94.2, 0.1);
  // First order at OSR 128: ~ 10*log10(4.5*128^3/pi^2) ~ 59.8 dB.
  EXPECT_NEAR(si::dsm::theoretical_peak_sqnr_db(1, 128.0), 59.7, 0.2);
  // +15 dB per octave for 2nd order.
  EXPECT_NEAR(si::dsm::theoretical_peak_sqnr_db(2, 256.0) -
                  si::dsm::theoretical_peak_sqnr_db(2, 128.0),
              15.05, 0.1);
}

TEST(LinearModel, NoiseLimitedDrMatchesPaperBudget) {
  // Paper Sec. V: 33 nA rms, 6 uA peak, OSR 128 -> ~45 + 21 = 66 dB...
  // with the peak-signal convention we land at 63.3 dB, the measured
  // value.  (The paper's 45 dB uses a slightly different reference.)
  EXPECT_NEAR(si::dsm::noise_limited_dr_db(33e-9, 6e-6, 128.0), 63.3, 0.2);
  // OSR doubling buys 3 dB against white noise.
  EXPECT_NEAR(si::dsm::noise_limited_dr_db(33e-9, 6e-6, 256.0) -
                  si::dsm::noise_limited_dr_db(33e-9, 6e-6, 128.0),
              3.01, 0.05);
}

TEST(LinearModel, BitsFromDr) {
  EXPECT_NEAR(si::dsm::bits_from_dr_db(63.3), 10.2, 0.1);
  EXPECT_NEAR(si::dsm::bits_from_dr_db(1.76), 0.0, 1e-9);
}

}  // namespace
