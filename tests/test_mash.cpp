#include <gtest/gtest.h>

#include <cmath>

#include "dsm/mash.hpp"
#include "dsp/metrics.hpp"
#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"

namespace {

using si::dsm::MashConfig;
using si::dsm::MashModulator;

double inband_sndr(const MashConfig& cfg, double osr, double amp_rel,
                   std::size_t n = 1 << 16) {
  const double fclk = 2.45e6;
  const double f = si::dsp::coherent_frequency(1e3, fclk, n);
  MashModulator m(cfg);
  const auto x =
      si::dsp::sine(n, amp_rel * cfg.full_scale, f, fclk);
  auto y = m.run(x);
  for (auto& v : y) v *= cfg.full_scale;
  const auto s = si::dsp::compute_power_spectrum(y, fclk);
  si::dsp::ToneMeasurementOptions opt;
  opt.fundamental_hz = f;
  opt.band_hi_hz = fclk / (2.0 * osr);
  return si::dsp::measure_tone(s, opt).sndr_db;
}

TEST(Mash, TracksDc) {
  MashConfig cfg;
  cfg.stages = 2;
  MashModulator m(cfg);
  double acc = 0.0;
  const int n = 20000;
  for (int k = 0; k < n; ++k) acc += m.step(0.25 * cfg.full_scale);
  EXPECT_NEAR(acc / n, 0.25, 0.02);
}

TEST(Mash, TwoStageMatchesSecondOrderShaping) {
  MashConfig cfg;
  cfg.stages = 2;
  const double s64 = inband_sndr(cfg, 64.0, 0.5);
  const double s128 = inband_sndr(cfg, 128.0, 0.5);
  EXPECT_NEAR(s128 - s64, 15.0, 4.0);  // 2nd-order growth
  EXPECT_GT(s128, 75.0);
}

TEST(Mash, ThreeStageIsThirdOrder) {
  MashConfig cfg;
  cfg.stages = 3;
  const double s64 = inband_sndr(cfg, 64.0, 0.5);
  const double s128 = inband_sndr(cfg, 128.0, 0.5);
  EXPECT_NEAR(s128 - s64, 21.0, 5.0);  // 3rd-order growth
  EXPECT_GT(s128, 95.0);
}

TEST(Mash, SingleStageIsFirstOrder) {
  MashConfig cfg;
  cfg.stages = 1;
  const double s64 = inband_sndr(cfg, 64.0, 0.5);
  const double s128 = inband_sndr(cfg, 128.0, 0.5);
  EXPECT_NEAR(s128 - s64, 9.0, 3.5);
}

TEST(Mash, IntegratorLeakBreaksCancellation) {
  // The SI transmission leak destroys the digital cancellation: with
  // 1% leak the 3-stage MASH loses tens of dB — the reason the paper
  // uses a single robust loop instead.
  MashConfig ideal;
  ideal.stages = 3;
  MashConfig leaky = ideal;
  leaky.integrator_leak = 1e-2;
  const double s_ideal = inband_sndr(ideal, 128.0, 0.5);
  const double s_leaky = inband_sndr(leaky, 128.0, 0.5);
  EXPECT_GT(s_ideal - s_leaky, 20.0);
}

TEST(Mash, InterstageGainErrorAlsoLeaks) {
  MashConfig ideal;
  ideal.stages = 2;
  MashConfig off = ideal;
  off.interstage_gain_error = 0.05;
  const double s_ideal = inband_sndr(ideal, 128.0, 0.5);
  const double s_off = inband_sndr(off, 128.0, 0.5);
  EXPECT_GT(s_ideal - s_off, 8.0);
}

TEST(Mash, OutputIsMultiLevel) {
  MashConfig cfg;
  cfg.stages = 2;
  MashModulator m(cfg);
  bool beyond_one = false;
  for (int k = 0; k < 1000; ++k) {
    const double y = m.step(0.3 * cfg.full_scale * std::sin(0.01 * k));
    if (std::abs(y) > 1.5) beyond_one = true;
    EXPECT_LE(std::abs(y), 3.0 + 1e-12);  // N=2: |y| <= 3 levels
  }
  EXPECT_TRUE(beyond_one);
}

TEST(Mash, RejectsBadStageCount) {
  MashConfig cfg;
  cfg.stages = 0;
  EXPECT_THROW(MashModulator{cfg}, std::invalid_argument);
  cfg.stages = 5;
  EXPECT_THROW(MashModulator{cfg}, std::invalid_argument);
}

TEST(Mash, ResetRestoresState) {
  MashConfig cfg;
  MashModulator m(cfg);
  const auto x = si::dsp::sine(200, 2e-6, 0.01, 1.0);
  const auto a = m.run(x);
  m.reset();
  const auto b = m.run(x);
  EXPECT_EQ(a, b);
}

}  // namespace
