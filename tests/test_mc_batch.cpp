// Batched Monte-Carlo contracts: the SoA LU kernels are bit-identical
// to the scalar SparseLu reference lane-for-lane, pivot drift ejects
// exactly the drifting lane, and the batched DC driver reproduces the
// serial sample vector at every batch size and thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "analysis/mc_batch.hpp"
#include "linalg/batch.hpp"
#include "obs/telemetry.hpp"
#include "runtime/parallel.hpp"
#include "runtime/rng_stream.hpp"
#include "spice/mna_batch.hpp"

namespace {

using namespace si;

// Dense-ish 4x4 test pattern with an asymmetric structure.
std::shared_ptr<const linalg::SparsePattern> make_pattern() {
  linalg::PatternBuilder pb(4);
  for (int i = 0; i < 4; ++i) pb.add(i, i);
  pb.add(0, 1);
  pb.add(1, 0);
  pb.add(1, 2);
  pb.add(2, 3);
  pb.add(3, 0);
  pb.add(3, 2);
  return pb.build(/*symmetrize=*/true);
}

// Fills `a` with a deterministic well-conditioned value set for `seed`.
void fill_values(linalg::SparseMatrixD& a, std::uint64_t seed) {
  runtime::RngStream rng(seed);
  auto& v = a.values();
  for (std::size_t s = 0; s < v.size(); ++s) v[s] = rng.uniform() - 0.5;
  const auto& diag = a.pattern().diag_slots();
  for (int i = 0; i < a.dim(); ++i)
    v[static_cast<std::size_t>(diag[i])] += 4.0;  // diagonally dominant
}

TEST(BatchedSparseLu, BitIdenticalToScalarPerLane) {
  const auto pattern = make_pattern();
  const std::size_t kLanes = 5;

  linalg::SparseMatrixD nominal(pattern);
  fill_values(nominal, 1);
  linalg::SparseLuD ref;
  ref.factor(nominal);

  linalg::BatchedSparseLu blu;
  blu.adopt_symbolic(ref, kLanes);
  ASSERT_TRUE(blu.adopted());

  linalg::BatchedSparseMatrixD ba(pattern, kLanes);
  std::vector<linalg::SparseMatrixD> lane_a(kLanes,
                                            linalg::SparseMatrixD(pattern));
  for (std::size_t k = 0; k < kLanes; ++k) {
    fill_values(lane_a[k], 100 + k);
    for (std::size_t s = 0; s < pattern->nnz(); ++s)
      ba.values()[s * kLanes + k] = lane_a[k].values()[s];
  }

  std::vector<unsigned char> live(kLanes, 1);
  EXPECT_EQ(blu.refactor(ba, live), 0u);

  const std::size_t n = 4;
  std::vector<double> b_soa(n * kLanes), x_soa(n * kLanes);
  std::vector<std::vector<double>> lane_b(kLanes, std::vector<double>(n));
  for (std::size_t k = 0; k < kLanes; ++k) {
    runtime::RngStream rng(900 + k);
    for (std::size_t i = 0; i < n; ++i) {
      lane_b[k][i] = rng.uniform();
      b_soa[i * kLanes + k] = lane_b[k][i];
    }
  }
  blu.solve(b_soa, x_soa);

  // Scalar reference: the SAME shared symbolic (factor on nominal, then
  // numeric-only refactor per lane), compared bitwise.
  linalg::SparseLuD slu;
  slu.factor(nominal);
  std::vector<double> x;
  for (std::size_t k = 0; k < kLanes; ++k) {
    slu.refactor(lane_a[k]);
    slu.solve(lane_b[k], x);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(x[i], x_soa[i * kLanes + k]) << "lane " << k << " row " << i;
  }
}

TEST(BatchedSparseLu, DriftEjectsOnlyTheDriftingLane) {
  // 2x2 system where lane 1's values make the FROZEN pivot order bad
  // (a(0,0) collapses to 1e-12 of the row scale) while the matrix
  // itself stays perfectly well-conditioned — the re-pivoting recovery
  // path must solve it.  Lane 0 stays healthy throughout.
  linalg::PatternBuilder pb(2);
  pb.add(0, 0);
  pb.add(0, 1);
  pb.add(1, 0);
  pb.add(1, 1);
  const auto pattern = pb.build();

  linalg::SparseMatrixD nominal(pattern);
  nominal.add(0, 0, 2.0);  // pivoting freezes row order (0, 1)
  nominal.add(0, 1, 1.0);
  nominal.add(1, 0, 1.0);
  nominal.add(1, 1, 1.0);
  linalg::SparseLuD ref;
  ref.factor(nominal);

  const std::size_t kLanes = 2;
  linalg::BatchedSparseLu blu;
  blu.adopt_symbolic(ref, kLanes);

  linalg::BatchedSparseMatrixD ba(pattern, kLanes);
  // Lane 0: the nominal values.  Lane 1: a(0,0) = 1e-12, so the frozen
  // leading pivot sits far below drift_tol * rmax even though the
  // matrix is fine under row exchange.
  for (std::size_t s = 0; s < pattern->nnz(); ++s)
    ba.values()[s * kLanes + 0] = nominal.values()[s];
  linalg::SparseMatrixD drifty(pattern);
  drifty.add(0, 0, 1e-12);
  drifty.add(0, 1, 1.0);
  drifty.add(1, 0, 1.0);
  drifty.add(1, 1, 1.0);
  for (std::size_t s = 0; s < pattern->nnz(); ++s)
    ba.values()[s * kLanes + 1] = drifty.values()[s];

  std::vector<unsigned char> live(kLanes, 1);
  EXPECT_EQ(blu.refactor(ba, live), 1u);
  EXPECT_EQ(live[0], 1);
  EXPECT_EQ(live[1], 0);

  // The scalar reference agrees that this trial drifts...
  linalg::SparseLuD slu;
  slu.factor(nominal);
  EXPECT_THROW(slu.refactor(drifty), linalg::PivotDriftError);

  // ...and the recovery path (full re-pivoting factor on the trial's
  // own values) solves it.
  slu.factor(drifty);
  std::vector<double> b = {1.0, 1.0}, x;
  slu.solve(b, x);
  EXPECT_NEAR(drifty.get(0, 0) * x[0] + drifty.get(0, 1) * x[1], 1.0, 1e-6);

  // Lane 0 is untouched by its neighbor's ejection: solution still
  // bitwise-matches the scalar shared-symbolic path.
  std::vector<double> b_soa = {1.0, 1.0, 1.0, 1.0};  // row-major SoA
  std::vector<double> x_soa(4);
  blu.solve(b_soa, x_soa);
  linalg::SparseLuD s0;
  s0.factor(nominal);
  s0.refactor(nominal);
  std::vector<double> x0;
  s0.solve(b, x0);
  EXPECT_EQ(x_soa[0 * 2 + 0], x0[0]);
  EXPECT_EQ(x_soa[1 * 2 + 0], x0[1]);
}

TEST(McBatch, LaneResolverHonorsEnvAndDefault) {
  EXPECT_EQ(analysis::mc_batch_lanes(5), 5u);
  unsetenv("SI_MC_BATCH");
  EXPECT_EQ(analysis::mc_batch_lanes(0), 8u);
  setenv("SI_MC_BATCH", "3", 1);
  EXPECT_EQ(analysis::mc_batch_lanes(0), 3u);
  setenv("SI_MC_BATCH", "9999", 1);
  EXPECT_EQ(analysis::mc_batch_lanes(0), 64u);
  unsetenv("SI_MC_BATCH");
}

TEST(McBatch, SamplesBitIdenticalAcrossBatchSizesAndThreads) {
  const auto w = analysis::modulator_mismatch_workload(1);
  const int kRuns = 33;

  analysis::McBatchOptions ref_opts;
  ref_opts.seed0 = 42;
  ref_opts.batch = 1;
  ref_opts.parallel = false;  // the serial scalar reference
  const auto ref = analysis::monte_carlo_dc(kRuns, w, ref_opts);
  ASSERT_EQ(ref.count(), static_cast<std::size_t>(kRuns));

  for (std::size_t batch : {1u, 3u, 4u, 8u, 17u}) {
    for (unsigned threads : {1u, 2u, 8u}) {
      runtime::set_thread_count(threads);
      analysis::McBatchOptions opts;
      opts.seed0 = 42;
      opts.batch = batch;
      const auto st = analysis::monte_carlo_dc(kRuns, w, opts);
      EXPECT_EQ(st.samples, ref.samples)
          << "batch=" << batch << " threads=" << threads;
      EXPECT_EQ(st.mean, ref.mean);
      EXPECT_EQ(st.sigma, ref.sigma);
    }
  }
  runtime::set_thread_count(0);
}

TEST(McBatch, EjectedLanesRecoverTheReferenceResult) {
  obs::set_enabled(true);
  const int kRuns = 12;

  auto w = analysis::modulator_mismatch_workload(1);
  analysis::McBatchOptions ref_opts;
  ref_opts.seed0 = 7;
  ref_opts.batch = 1;
  ref_opts.parallel = false;
  const auto ref = analysis::monte_carlo_dc(kRuns, w, ref_opts);

  // An absurd ejection threshold (pivot < 10 * row max) throws every
  // lane off the batched path; each trial must come back through the
  // scalar recovery solve with the identical sample.
  w.batch_drift_tol = 10.0;
  const auto before = obs::counter("mc.batch.lane_ejections").value();
  analysis::McBatchOptions opts;
  opts.seed0 = 7;
  opts.batch = 4;
  opts.parallel = false;
  const auto st = analysis::monte_carlo_dc(kRuns, w, opts);
  EXPECT_EQ(st.samples, ref.samples);
  EXPECT_GT(obs::counter("mc.batch.lane_ejections").value(), before);
}

TEST(McBatch, BatchedAndScalarRunsShareOneCacheEntry) {
  auto applies = std::make_shared<std::atomic<int>>(0);
  auto base = analysis::modulator_mismatch_workload(1);
  analysis::McDcWorkload w;
  w.newton = base.newton;
  w.build = [base, applies](spice::Circuit& c) {
    auto fns = base.build(c);
    auto inner = fns.apply;
    fns.apply = [inner, applies](std::uint64_t seed) {
      applies->fetch_add(1);
      inner(seed);
    };
    return fns;
  };

  analysis::McBatchOptions opts;
  opts.seed0 = 11;
  opts.cache_key = 0x5150c0ffee;  // unique to this test
  opts.parallel = false;
  opts.batch = 8;
  const auto batched = analysis::monte_carlo_dc(10, w, opts);
  const int after_batched = applies->load();
  EXPECT_GT(after_batched, 0);

  // Same key, scalar path: bit-identical results mean the batched run
  // already owns the cache entry — no trial may execute.
  opts.batch = 1;
  const auto scalar = analysis::monte_carlo_dc(10, w, opts);
  EXPECT_EQ(applies->load(), after_batched);
  EXPECT_EQ(scalar.samples, batched.samples);
}

TEST(McStatistics, HistogramLoadsSamplesIntoRegistry) {
  obs::set_enabled(true);
  const auto st = analysis::monte_carlo(
      200, [](std::uint64_t seed) { return runtime::RngStream(seed).normal(); },
      3);
  obs::Histogram& h = st.histogram("mc.test.samples");
  EXPECT_EQ(h.count(), st.count());
  EXPECT_EQ(h.min(), st.min);
  EXPECT_EQ(h.max(), st.max);

  analysis::McStatistics empty;
  EXPECT_THROW(empty.histogram(), std::logic_error);
}

}  // namespace
