#include <gtest/gtest.h>

#include <cmath>

#include "si/memory_cell.hpp"

namespace {

using si::cells::CellClass;
using si::cells::CellGeneration;
using si::cells::Diff;
using si::cells::DifferentialMemoryCell;
using si::cells::MemoryCell;
using si::cells::MemoryCellParams;

TEST(Diff, Arithmetic) {
  const Diff a = Diff::from_dm_cm(4e-6, 1e-6);
  EXPECT_DOUBLE_EQ(a.dm(), 4e-6);
  EXPECT_DOUBLE_EQ(a.cm(), 1e-6);
  EXPECT_DOUBLE_EQ(a.p, 3e-6);
  EXPECT_DOUBLE_EQ(a.m, -1e-6);
  const Diff b = a * 2.0;
  EXPECT_DOUBLE_EQ(b.dm(), 8e-6);
  const Diff c = a + a - a;
  EXPECT_DOUBLE_EQ(c.dm(), a.dm());
}

TEST(MemoryCell, IdealCellInvertsExactly) {
  MemoryCell cell(MemoryCellParams::ideal(), 1);
  for (double x : {-8e-6, -1e-6, 0.0, 2e-6, 12e-6}) {
    EXPECT_DOUBLE_EQ(cell.process(x), -x);
    EXPECT_DOUBLE_EQ(cell.stored(), x);
  }
}

TEST(MemoryCell, TransmissionErrorScalesOutput) {
  MemoryCellParams p = MemoryCellParams::ideal();
  p.base_transmission_error = 1e-2;
  p.gga_gain = 1.0;
  MemoryCell cell(p, 1);
  EXPECT_NEAR(cell.process(10e-6), -10e-6 * (1.0 - 1e-2), 1e-15);
}

TEST(MemoryCell, GgaReducesTransmissionError) {
  MemoryCellParams base = MemoryCellParams::ideal();
  base.base_transmission_error = 1e-2;
  base.gga_gain = 1.0;
  MemoryCellParams boosted = base;
  boosted.gga_gain = 100.0;
  EXPECT_DOUBLE_EQ(base.transmission_error(), 1e-2);
  EXPECT_DOUBLE_EQ(boosted.transmission_error(), 1e-4);
  MemoryCell c1(base, 1), c2(boosted, 1);
  EXPECT_LT(std::abs(c2.process(10e-6) + 10e-6),
            std::abs(c1.process(10e-6) + 10e-6));
}

TEST(MemoryCell, ClassAClipsAtBias) {
  MemoryCellParams p = MemoryCellParams::ideal();
  p.cell_class = CellClass::kClassA;
  p.bias_current = 5e-6;
  p.modulation_limit = 0.9;
  MemoryCell cell(p, 1);
  EXPECT_DOUBLE_EQ(cell.process(20e-6), -4.5e-6);
  EXPECT_DOUBLE_EQ(cell.process(-20e-6), 4.5e-6);
  EXPECT_DOUBLE_EQ(cell.process(1e-6), -1e-6);  // inside range: clean
}

TEST(MemoryCell, ClassAbPassesSignalsBeyondBias) {
  MemoryCellParams p = MemoryCellParams::ideal();
  p.cell_class = CellClass::kClassAB;
  p.bias_current = 2e-6;
  p.full_scale = 16e-6;
  p.clip_factor = 4.0;
  MemoryCell cell(p, 1);
  // 8x the bias passes cleanly; clip only at 4x full scale.
  EXPECT_DOUBLE_EQ(cell.process(16e-6), -16e-6);
  EXPECT_DOUBLE_EQ(cell.process(100e-6), -64e-6);
}

TEST(MemoryCell, ChargeInjectionPolynomial) {
  MemoryCellParams p = MemoryCellParams::ideal();
  p.ci_a0 = 1e-3;
  p.ci_a2 = 1e-2;
  p.complementary_switches = false;
  MemoryCell cell(p, 1);
  const double fs = p.full_scale;
  // At x = 0.5: di = fs*(a0 + a2*0.25).
  const double expect = -(0.5 * fs + fs * (1e-3 + 1e-2 * 0.25));
  EXPECT_NEAR(cell.process(0.5 * fs), expect, 1e-15);
}

TEST(MemoryCell, ComplementarySwitchesReduceConstantInjection) {
  MemoryCellParams p = MemoryCellParams::ideal();
  p.ci_a0 = 1e-3;
  MemoryCellParams pc = p;
  pc.complementary_switches = true;
  p.complementary_switches = false;
  MemoryCell plain(p, 1), compl_(pc, 1);
  const double err_plain = std::abs(plain.process(0.0));
  const double err_compl = std::abs(compl_.process(0.0));
  EXPECT_NEAR(err_compl, 0.1 * err_plain, 1e-15);
}

TEST(MemoryCell, SlewCompressionAboveKnee) {
  MemoryCellParams p = MemoryCellParams::ideal();
  p.slew_knee = 10e-6;
  p.slew_compression = 0.1;
  MemoryCell cell(p, 1);
  // Below the knee: exact.
  EXPECT_DOUBLE_EQ(cell.process(8e-6), -8e-6);
  // Above: 10u + (15u-10u)*0.9 = 14.5u.
  EXPECT_NEAR(cell.process(15e-6), -14.5e-6, 1e-15);
  EXPECT_NEAR(cell.process(-15e-6), 14.5e-6, 1e-15);
}

TEST(MemoryCell, SettlingResidueTowardPreviousState) {
  MemoryCellParams p = MemoryCellParams::ideal();
  p.settling_error = 0.1;
  MemoryCell cell(p, 1);
  cell.process(0.0);
  // From state 0 toward 10u: reaches 9u with 10% residue.
  EXPECT_NEAR(cell.process(10e-6), -9e-6, 1e-15);
  // Next sample starts at 9u.
  EXPECT_NEAR(cell.process(10e-6), -(10e-6 - 0.1 * (10e-6 - 9e-6)), 1e-18);
}

TEST(MemoryCell, NoiseHasConfiguredRms) {
  MemoryCellParams p = MemoryCellParams::ideal();
  p.thermal_noise_rms = 50e-9;
  MemoryCell cell(p, 9);
  const int n = 50000;
  double s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double e = cell.process(0.0);
    s2 += e * e;
  }
  EXPECT_NEAR(std::sqrt(s2 / n), 50e-9, 5e-9);
}

TEST(MemoryCell, RejectsBadFullScale) {
  MemoryCellParams p;
  p.full_scale = 0.0;
  EXPECT_THROW(MemoryCell(p, 1), std::invalid_argument);
}

TEST(DifferentialMemoryCell, ConstantInjectionIsCommonMode) {
  MemoryCellParams p = MemoryCellParams::ideal();
  p.ci_a0 = 1e-3;
  p.complementary_switches = false;
  // No mismatch: the constant term lands fully on the common mode.
  DifferentialMemoryCell cell(p, 0.0, 1);
  const Diff out = cell.process(Diff::from_dm_cm(0.0, 0.0));
  EXPECT_NEAR(out.dm(), 0.0, 1e-18);
  EXPECT_NEAR(out.cm(), -1e-3 * p.full_scale, 1e-15);
}

TEST(DifferentialMemoryCell, EvenDistortionCancelsDifferentially) {
  MemoryCellParams p = MemoryCellParams::ideal();
  p.ci_a2 = 1e-2;
  DifferentialMemoryCell cell(p, 0.0, 1);
  // x^2 acts identically on +-dm/2 halves: the even term is CM only.
  const Diff out = cell.process(Diff::from_dm_cm(8e-6, 0.0));
  EXPECT_NEAR(out.dm(), -8e-6, 1e-12);
  EXPECT_LT(out.cm(), 0.0);  // the even product shows up as CM
}

TEST(DifferentialMemoryCell, MismatchIsDeterministicPerSeed) {
  MemoryCellParams p = MemoryCellParams::paper_class_ab();
  DifferentialMemoryCell a(p, 5e-3, 42);
  DifferentialMemoryCell b(p, 5e-3, 42);
  DifferentialMemoryCell c(p, 5e-3, 43);
  EXPECT_DOUBLE_EQ(a.gain_mismatch(), b.gain_mismatch());
  EXPECT_NE(a.gain_mismatch(), c.gain_mismatch());
}

TEST(MemoryCellParams, Presets) {
  const auto ab = MemoryCellParams::paper_class_ab();
  EXPECT_EQ(ab.cell_class, CellClass::kClassAB);
  EXPECT_TRUE(ab.cds());
  const auto a = MemoryCellParams::class_a_baseline();
  EXPECT_EQ(a.cell_class, CellClass::kClassA);
  EXPECT_GE(a.bias_current, a.full_scale);  // class A biases above FS
  const auto first = MemoryCellParams::first_generation();
  EXPECT_FALSE(first.cds());
  const auto ideal = MemoryCellParams::ideal();
  EXPECT_DOUBLE_EQ(ideal.transmission_error(), 0.0);
}

}  // namespace
