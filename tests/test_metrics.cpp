#include <gtest/gtest.h>

#include <cmath>

#include "dsp/metrics.hpp"
#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"

namespace {

using si::dsp::compute_power_spectrum;
using si::dsp::measure_tone;
using si::dsp::ToneMeasurementOptions;
using si::dsp::ToneMetrics;

TEST(Metrics, AliasFrequencyFolding) {
  const double fs = 1000.0;
  EXPECT_NEAR(si::dsp::alias_frequency(100.0, 2, fs), 200.0, 1e-9);
  EXPECT_NEAR(si::dsp::alias_frequency(100.0, 6, fs), 400.0, 1e-9);
  // 7th harmonic at 700 folds to 300.
  EXPECT_NEAR(si::dsp::alias_frequency(100.0, 7, fs), 300.0, 1e-9);
  // 13th at 1300 folds to 300.
  EXPECT_NEAR(si::dsp::alias_frequency(100.0, 13, fs), 300.0, 1e-9);
}

TEST(Metrics, EnobFromSndr) {
  EXPECT_NEAR(si::dsp::enob_from_sndr_db(1.76), 0.0, 1e-12);
  EXPECT_NEAR(si::dsp::enob_from_sndr_db(98.08), 16.0, 1e-9);
}

TEST(Metrics, SnrOfSineInWhiteNoise) {
  const std::size_t n = 1 << 15;
  const double fs = 1e6;
  const double amp = 1.0;
  const double sigma = 0.01;
  const double f = si::dsp::coherent_frequency(50e3, fs, n);
  auto x = si::dsp::sine(n, amp, f, fs);
  const auto noise = si::dsp::white_noise(n, sigma, 5);
  for (std::size_t i = 0; i < n; ++i) x[i] += noise[i];
  const auto s = compute_power_spectrum(x, fs);
  const ToneMetrics m = measure_tone(s);
  const double expected_snr =
      10.0 * std::log10((amp * amp / 2.0) / (sigma * sigma));
  EXPECT_NEAR(m.snr_db, expected_snr, 1.0);
  EXPECT_NEAR(m.fundamental_hz, f, s.bin_width());
}

TEST(Metrics, ThdOfHardClippedSine) {
  // A symmetric soft nonlinearity produces odd harmonics; check THD
  // against a direct two-tone construction instead: fundamental + known
  // 3rd harmonic 40 dB down.
  const std::size_t n = 1 << 14;
  const double fs = 1e6;
  const double f = si::dsp::coherent_frequency(31e3, fs, n);
  auto x = si::dsp::multitone(n, {{1.0, f, 0.0}, {0.01, 3.0 * f, 0.5}}, fs);
  const auto s = compute_power_spectrum(x, fs);
  const ToneMetrics m = measure_tone(s);
  EXPECT_NEAR(m.thd_db, -40.0, 0.5);
  EXPECT_NEAR(m.snr_db - m.sndr_db, m.snr_db - m.sndr_db, 0.0);
  EXPECT_LT(m.sndr_db, m.snr_db);  // distortion reduces SNDR below SNR
}

TEST(Metrics, BandLimitedSnrIgnoresOutOfBandNoise) {
  // Tone at 2 kHz in 10 kHz band; strong out-of-band tone at 300 kHz
  // must not affect the in-band SNR (mirrors the paper's 10 kHz BW SNR
  // on a 2.45 MHz stream).
  const std::size_t n = 1 << 16;
  const double fs = 2.45e6;
  const double f = si::dsp::coherent_frequency(2e3, fs, n);
  const double f_oob = si::dsp::coherent_frequency(300e3, fs, n);
  auto x = si::dsp::multitone(n, {{1.0, f, 0.0}, {1.0, f_oob, 0.1}}, fs);
  const auto noise = si::dsp::white_noise(n, 1e-4, 11);
  for (std::size_t i = 0; i < n; ++i) x[i] += noise[i];
  ToneMeasurementOptions opt;
  opt.band_hi_hz = 10e3;
  opt.fundamental_hz = f;
  const auto s = compute_power_spectrum(x, fs);
  const ToneMetrics m = measure_tone(s, opt);
  // In-band noise power = sigma^2 * (10k / (fs/2)).
  const double expected =
      10.0 * std::log10(0.5 / (1e-8 * (10e3 / (fs / 2.0))));
  EXPECT_NEAR(m.snr_db, expected, 1.5);
}

TEST(Metrics, SfdrSeesWorstSpur) {
  const std::size_t n = 1 << 14;
  const double fs = 1e6;
  const double f = si::dsp::coherent_frequency(41e3, fs, n);
  // Non-harmonic spur 50 dB down.
  const double f_spur = si::dsp::coherent_frequency(237e3, fs, n);
  auto x = si::dsp::multitone(
      n, {{1.0, f, 0.0}, {3.16e-3, f_spur, 0.2}}, fs);
  const auto s = compute_power_spectrum(x, fs);
  const ToneMetrics m = measure_tone(s);
  EXPECT_NEAR(m.sfdr_db, 50.0, 2.0);
}

TEST(Metrics, DynamicRangeInterpolation) {
  // SNDR rises 1 dB / dB from -75 dB input; crosses 0 at -70 dB.
  std::vector<double> level, sndr;
  for (int l = -80; l <= 0; l += 5) {
    level.push_back(l);
    sndr.push_back(static_cast<double>(l) + 70.0);
  }
  EXPECT_NEAR(si::dsp::dynamic_range_db(level, sndr), 70.0, 1e-9);
}

TEST(Metrics, DynamicRangeNoCrossing) {
  std::vector<double> level{-40.0, -20.0, 0.0};
  std::vector<double> sndr{-30.0, -20.0, -10.0};
  EXPECT_DOUBLE_EQ(si::dsp::dynamic_range_db(level, sndr), 0.0);
}

TEST(Metrics, DynamicRangeRejectsBadInput) {
  EXPECT_THROW(si::dsp::dynamic_range_db({0.0}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(si::dsp::dynamic_range_db({0.0, 1.0}, {1.0}),
               std::invalid_argument);
}

TEST(Metrics, HarmonicTableReported) {
  const std::size_t n = 1 << 14;
  const double fs = 1e6;
  const double f = si::dsp::coherent_frequency(21e3, fs, n);
  auto x = si::dsp::multitone(
      n, {{1.0, f, 0.0}, {0.1, 2 * f, 0.0}, {0.05, 3 * f, 0.0}}, fs);
  const auto s = compute_power_spectrum(x, fs);
  const ToneMetrics m = measure_tone(s);
  ASSERT_GE(m.harmonic_powers.size(), 2u);
  EXPECT_NEAR(m.harmonic_powers[0], 0.1 * 0.1 / 2.0, 1e-4);
  EXPECT_NEAR(m.harmonic_powers[1], 0.05 * 0.05 / 2.0, 1e-4);
}

}  // namespace
