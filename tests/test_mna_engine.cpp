// MnaEngine behavior: solver selection (auto / SI_SOLVER / explicit),
// dense-vs-sparse parity on transistor-level netlists, symbolic-reuse
// accounting, and pattern-cache invalidation on circuit edits.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "obs/telemetry.hpp"
#include "si/netlists.hpp"
#include "spice/dc.hpp"
#include "spice/mna.hpp"
#include "spice/transient.hpp"

namespace {

using namespace si::spice;
using namespace si::cells::netlists;

/// Saves/clears SI_SOLVER for the test's duration.
class EnvGuard {
 public:
  EnvGuard() {
    if (const char* v = std::getenv("SI_SOLVER")) saved_ = v;
    unsetenv("SI_SOLVER");
  }
  ~EnvGuard() {
    if (saved_.empty())
      unsetenv("SI_SOLVER");
    else
      setenv("SI_SOLVER", saved_.c_str(), 1);
  }

 private:
  std::string saved_;
};

TEST(SolverSelect, AutoUsesSizeThreshold) {
  EnvGuard env;
  EXPECT_EQ(resolve_solver(SolverKind::kAuto, kSparseAutoThreshold - 1),
            SolverKind::kDense);
  EXPECT_EQ(resolve_solver(SolverKind::kAuto, kSparseAutoThreshold),
            SolverKind::kSparse);
  EXPECT_EQ(resolve_solver(SolverKind::kAuto, kSchurAutoThreshold - 1),
            SolverKind::kSparse);
  EXPECT_EQ(resolve_solver(SolverKind::kAuto, kSchurAutoThreshold),
            SolverKind::kSchur);
}

TEST(SolverSelect, ExplicitRequestWins) {
  EnvGuard env;
  setenv("SI_SOLVER", "sparse", 1);
  EXPECT_EQ(resolve_solver(SolverKind::kDense, 1000), SolverKind::kDense);
  EXPECT_EQ(resolve_solver(SolverKind::kSparse, 2), SolverKind::kSparse);
}

TEST(SolverSelect, EnvOverridesAuto) {
  EnvGuard env;
  setenv("SI_SOLVER", "sparse", 1);
  EXPECT_EQ(resolve_solver(SolverKind::kAuto, 2), SolverKind::kSparse);
  setenv("SI_SOLVER", "dense", 1);
  EXPECT_EQ(resolve_solver(SolverKind::kAuto, 1000), SolverKind::kDense);
  setenv("SI_SOLVER", "schur", 1);
  EXPECT_EQ(resolve_solver(SolverKind::kAuto, 2), SolverKind::kSchur);
  setenv("SI_SOLVER", "auto", 1);
  EXPECT_EQ(resolve_solver(SolverKind::kAuto, 2), SolverKind::kDense);
  setenv("SI_SOLVER", "", 1);
  EXPECT_EQ(resolve_solver(SolverKind::kAuto, 2), SolverKind::kDense);
}

TEST(SolverSelect, RejectsUnknownEnvValues) {
  EnvGuard env;
  // A typo such as SI_SOLVER=sprase used to silently mean "auto" and
  // benchmark the wrong solver; it must fail loudly, naming the valid
  // values.
  setenv("SI_SOLVER", "sprase", 1);
  try {
    (void)solver_kind_from_env();
    FAIL() << "expected std::invalid_argument for SI_SOLVER=sprase";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sprase"), std::string::npos) << msg;
    for (const char* valid : {"auto", "dense", "sparse", "schur"})
      EXPECT_NE(msg.find(valid), std::string::npos) << msg;
  }
  setenv("SI_SOLVER", "bogus", 1);
  EXPECT_THROW((void)resolve_solver(SolverKind::kAuto, 2),
               std::invalid_argument);
  // Explicit requests never consult the environment.
  EXPECT_EQ(resolve_solver(SolverKind::kDense, 2), SolverKind::kDense);
}

TEST(SolverSelect, EnvDrivesEngineThroughAnalyses) {
  EnvGuard env;
  setenv("SI_SOLVER", "sparse", 1);
  Circuit c;
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  MemoryPairOptions opt;
  opt.switches_always_on = true;
  build_class_ab_memory_pair(c, opt, "m_");
  MnaEngine engine(c);
  DcOptions dco;
  dc_operating_point(c, engine, dco);
  EXPECT_EQ(engine.active_solver(), SolverKind::kSparse);
  EXPECT_EQ(engine.stats().pattern_builds, 1u);
}

/// Builds one Table 2 modulator-core circuit with supply and a small
/// differential input.
ModulatorCoreHandles build_modulator_fixture(Circuit& c, int sections) {
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  ModulatorCoreOptions opt;
  const auto h = build_modulator_core(c, sections, opt, "mod_");
  c.add<CurrentSource>("Iinp", c.ground(), h.in_p, 4e-6);
  c.add<CurrentSource>("Iinm", c.ground(), h.in_m, -4e-6);
  return h;
}

TEST(MnaEngine, DenseSparseDcParityOnModulatorCore) {
  auto solve = [](SolverKind kind) {
    Circuit c;
    build_modulator_fixture(c, 1);
    MnaEngine engine(c, kind);
    DcOptions opt;
    opt.erc_gate = false;
    return dc_operating_point(c, engine, opt).x;
  };
  const auto xd = solve(SolverKind::kDense);
  const auto xs = solve(SolverKind::kSparse);
  ASSERT_EQ(xd.size(), xs.size());
  for (std::size_t i = 0; i < xd.size(); ++i)
    EXPECT_NEAR(xd[i], xs[i], 1e-9) << "unknown " << i;
}

TEST(MnaEngine, SymbolicFactorizationReusedAcrossTransientSteps) {
  Circuit c;
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  DelayStageOptions opt;
  const auto h = build_delay_stage(c, opt, "s_");
  c.add<CurrentSource>("Iin", c.ground(), h.in, 5e-6);
  c.finalize();

  MnaEngine engine(c, SolverKind::kSparse);
  NewtonOptions nopt;
  StampContext ctx;
  ctx.mode = AnalysisMode::kDcOperatingPoint;
  si::linalg::Vector x;
  engine.newton(ctx, x, nopt);
  {
    SolutionView sol(c, x);
    for (const auto& e : c.elements()) e->accept(sol, ctx);
  }

  ctx.mode = AnalysisMode::kTransient;
  ctx.dt = opt.pair.clock_period / 200.0;
  const int steps = 40;
  for (int k = 1; k <= steps; ++k) {
    ctx.time = k * ctx.dt;
    engine.newton(ctx, x, nopt);
    SolutionView sol(c, x);
    for (const auto& e : c.elements()) e->accept(sol, ctx);
  }

  const MnaStats& st = engine.stats();
  EXPECT_EQ(st.pattern_builds, 1u);
  // One pivoting factorization (plus at most a rare pivot-drift rescue);
  // every other iteration reuses the frozen pattern numerically.
  EXPECT_LE(st.symbolic_factors, 2u);
  EXPECT_GE(st.numeric_refactors, static_cast<std::uint64_t>(steps));
  EXPECT_EQ(st.workspace_allocs, 1u);
}

TEST(MnaEngine, PatternCacheInvalidatedOnCircuitEdit) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add<VoltageSource>("V1", a, c.ground(), 1.0);
  c.add<Resistor>("R1", a, b, 1e3);
  c.add<Resistor>("R2", b, c.ground(), 1e3);
  c.finalize();

  MnaEngine engine(c, SolverKind::kSparse);
  NewtonOptions nopt;
  StampContext ctx;
  si::linalg::Vector x;
  engine.newton(ctx, x, nopt);
  EXPECT_EQ(engine.stats().pattern_builds, 1u);
  EXPECT_NEAR(x[b - 1], 0.5, 1e-8);  // gmin shifts the ideal value slightly

  // Edit: new element, new node, re-finalize — the engine must rebuild
  // its pattern and symbolic factorization on the next solve.
  const NodeId d = c.node("d");
  c.add<Resistor>("R3", b, d, 1e3);
  c.add<Resistor>("R4", d, c.ground(), 1e3);
  c.finalize();
  engine.newton(ctx, x, nopt);
  EXPECT_EQ(engine.stats().pattern_builds, 2u);
  // Divider now 1k into (1k + 2k || ...): check against the dense path.
  Circuit ref;
  const NodeId ra = ref.node("a");
  const NodeId rb = ref.node("b");
  const NodeId rd = ref.node("d");
  ref.add<VoltageSource>("V1", ra, ref.ground(), 1.0);
  ref.add<Resistor>("R1", ra, rb, 1e3);
  ref.add<Resistor>("R2", rb, ref.ground(), 1e3);
  ref.add<Resistor>("R3", rb, rd, 1e3);
  ref.add<Resistor>("R4", rd, ref.ground(), 1e3);
  MnaEngine dense(ref, SolverKind::kDense);
  si::linalg::Vector xr;
  dense.newton(ctx, xr, nopt);
  ASSERT_EQ(x.size(), xr.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], xr[i], 1e-12);
}

/// Deliberately violates the stamp-pattern contract: bridges its two
/// nodes only once ctx.time reaches t_on, so pattern discovery before
/// t_on never sees the (a, b) coordinates and the first post-t_on stamp
/// raises PatternMissError.
class LatePathElement : public Element {
 public:
  LatePathElement(std::string name, NodeId a, NodeId b, double t_on)
      : Element(std::move(name)), a_(a), b_(b), t_on_(t_on) {}

  std::vector<Terminal> terminals() const override {
    return {{a_, "p", false}, {b_, "m", false}};
  }

  void stamp(RealStamper& s, const StampContext& ctx) override {
    if (ctx.mode == AnalysisMode::kTransient && ctx.time >= t_on_)
      s.conductance(a_, b_, 1e-3);
  }

 private:
  NodeId a_, b_;
  double t_on_;
};

TEST(MnaEngine, DenseFallbackIsStickyPerTopologyAndResetsOnEdit) {
  si::obs::set_enabled(true);
#if SI_OBS_ENABLED
  si::obs::Counter& engaged = si::obs::counter("mna.dense_fallback_engaged");
  const std::uint64_t engaged_before = engaged.value();
#endif

  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  const NodeId d = c.node("d");
  c.add<VoltageSource>("V1", a, c.ground(), 1.0);
  c.add<Resistor>("R1", a, b, 1e3);
  c.add<Resistor>("R2", b, c.ground(), 1e3);
  c.add<Resistor>("R3", d, c.ground(), 1e3);
  c.add<LatePathElement>("X1", b, d, /*t_on=*/0.5);
  c.finalize();

  MnaEngine engine(c, SolverKind::kSparse);
  NewtonOptions nopt;
  StampContext ctx;
  ctx.mode = AnalysisMode::kTransient;
  ctx.dt = 1e-3;
  si::linalg::Vector x;

  // Before t_on the discovered pattern is complete: sparse, no fallback.
  ctx.time = 1e-3;
  engine.newton(ctx, x, nopt);
  EXPECT_EQ(engine.active_solver(), SolverKind::kSparse);
  EXPECT_EQ(engine.stats().dense_fallbacks, 0u);
  EXPECT_NEAR(x[b - 1], 0.5, 1e-6);

  // Crossing t_on stamps outside the frozen pattern: the solve still
  // succeeds (dense rescue) and the engagement is counted, not silent.
  ctx.time = 1.0;
  engine.newton(ctx, x, nopt);
  EXPECT_EQ(engine.active_solver(), SolverKind::kDense);
  EXPECT_EQ(engine.stats().dense_fallbacks, 1u);
#if SI_OBS_ENABLED
  EXPECT_EQ(engaged.value(), engaged_before + 1);
#endif
  // b now loaded by R2 || (1k bridge + R3) = 1k || 2k.
  EXPECT_NEAR(x[b - 1], 0.4, 1e-6);

  // Same topology: the fallback is sticky — no sparse retry per solve.
  ctx.time = 1.1;
  engine.newton(ctx, x, nopt);
  EXPECT_EQ(engine.active_solver(), SolverKind::kDense);
  EXPECT_EQ(engine.stats().dense_fallbacks, 1u);

  // Edit the circuit (revision bump): the fallback must clear and the
  // rebuilt pattern — discovered at a post-t_on time — works sparsely.
  // This used to pin the engine to the dense solver forever.
  c.add<Resistor>("R4", d, c.ground(), 1e6);
  c.finalize();
  ctx.time = 1.2;
  engine.newton(ctx, x, nopt);
  EXPECT_EQ(engine.active_solver(), SolverKind::kSparse);
  EXPECT_EQ(engine.stats().dense_fallbacks, 1u);
#if SI_OBS_ENABLED
  EXPECT_EQ(engaged.value(), engaged_before + 1);
#endif
  EXPECT_NEAR(x[b - 1], 0.4, 1e-3);  // R4 = 1M barely loads node d

  si::obs::set_enabled(false);
}

TEST(MnaEngine, AutoPicksSparseForLargeNetlists) {
  EnvGuard env;
  Circuit c;
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  DelayStageOptions opt;
  const auto h = build_delay_line_chain(c, 6, opt, "dl_");
  c.add<CurrentSource>("Iin", c.ground(), h.in, 5e-6);
  c.finalize();
  ASSERT_GE(c.system_size(), kSparseAutoThreshold);
  MnaEngine engine(c);
  DcOptions dco;
  dco.erc_gate = false;
  dc_operating_point(c, engine, dco);
  EXPECT_EQ(engine.active_solver(), SolverKind::kSparse);
}

TEST(DcSweep, WarmStartMatchesPerPointColdSolves) {
  auto build = [](Circuit& c) {
    c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
    MemoryPairOptions opt;
    opt.switches_always_on = true;
    const auto h = build_class_ab_memory_pair(c, opt, "m_");
    return h;
  };

  std::vector<double> levels;
  for (int k = -5; k <= 5; ++k) levels.push_back(k * 2e-6);

  // Warm-started sweep (shared engine, previous point as initial guess).
  Circuit cs;
  const auto hs = build(cs);
  auto& iin = cs.add<CurrentSource>("Iin", cs.ground(), hs.d, 0.0);
  const auto swept = dc_sweep(
      cs, levels, [&](double v) { iin.set_waveform(std::make_unique<DcWave>(v)); },
      [&](const SolutionView& sol) { return sol.voltage(hs.d); });

  // Cold reference: a fresh circuit and zero-start solve per point.
  for (std::size_t k = 0; k < levels.size(); ++k) {
    Circuit cc;
    const auto hc = build(cc);
    cc.add<CurrentSource>("Iin", cc.ground(), hc.d, levels[k]);
    const auto r = dc_operating_point(cc);
    SolutionView sol(cc, r.x);
    EXPECT_NEAR(swept[k], sol.voltage(hc.d), 1e-7) << "point " << k;
  }
}

}  // namespace
