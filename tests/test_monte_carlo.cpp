#include <gtest/gtest.h>

#include <cmath>

#include "analysis/monte_carlo.hpp"
#include "dsp/signal.hpp"
#include "si/common_mode.hpp"

namespace {

using si::analysis::monte_carlo;

TEST(MonteCarlo, GaussianTrialStatistics) {
  const auto st = monte_carlo(4000, [](std::uint64_t seed) {
    si::dsp::Xoshiro256 rng(seed);
    return rng.normal(5.0, 2.0);
  });
  EXPECT_EQ(st.count(), 4000u);
  EXPECT_NEAR(st.mean, 5.0, 0.15);
  EXPECT_NEAR(st.sigma, 2.0, 0.15);
  EXPECT_NEAR(st.percentile(0.5), 5.0, 0.2);
  // ~84% of a Gaussian lies above mean - sigma.
  EXPECT_NEAR(st.yield_above(3.0), 0.84, 0.03);
  EXPECT_LE(st.min, st.percentile(0.01));
  EXPECT_GE(st.max, st.percentile(0.99));
}

TEST(MonteCarlo, DeterministicForSeed0) {
  auto trial = [](std::uint64_t seed) {
    si::dsp::Xoshiro256 rng(seed);
    return rng.uniform();
  };
  const auto a = monte_carlo(100, trial, 7);
  const auto b = monte_carlo(100, trial, 7);
  const auto c = monte_carlo(100, trial, 8);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_NE(a.samples, c.samples);
}

TEST(MonteCarlo, PercentileEdges) {
  const auto st = monte_carlo(10, [](std::uint64_t s) {
    return static_cast<double>(s % 100);
  });
  EXPECT_DOUBLE_EQ(st.percentile(0.0), st.min);
  EXPECT_DOUBLE_EQ(st.percentile(1.0), st.max);
  EXPECT_THROW(si::analysis::McStatistics{}.percentile(0.5),
               std::logic_error);
}

TEST(MonteCarlo, RejectsZeroRuns) {
  EXPECT_THROW(monte_carlo(0, [](std::uint64_t) { return 0.0; }),
               std::invalid_argument);
}

TEST(MonteCarlo, CmffResidualDistributionScalesWithMismatch) {
  // Yield-style use: the CMFF residual CM gain across mismatch draws.
  auto sigma_of = [](double mismatch) {
    const auto st = monte_carlo(400, [mismatch](std::uint64_t seed) {
      si::cells::CmffParams p;
      p.mirror_mismatch_sigma = mismatch;
      si::cells::Cmff ff(p, seed);
      return std::abs(ff.residual_cm_gain());
    });
    return st.percentile(0.9);
  };
  const double p90_small = sigma_of(1e-3);
  const double p90_large = sigma_of(5e-3);
  EXPECT_NEAR(p90_large / p90_small, 5.0, 1.5);
}

}  // namespace
