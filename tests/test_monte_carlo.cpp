#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "analysis/monte_carlo.hpp"
#include "dsp/signal.hpp"
#include "runtime/parallel.hpp"
#include "runtime/result_cache.hpp"
#include "si/common_mode.hpp"

namespace {

using si::analysis::McOptions;
using si::analysis::monte_carlo;

TEST(MonteCarlo, GaussianTrialStatistics) {
  const auto st = monte_carlo(4000, [](std::uint64_t seed) {
    si::dsp::Xoshiro256 rng(seed);
    return rng.normal(5.0, 2.0);
  });
  EXPECT_EQ(st.count(), 4000u);
  EXPECT_NEAR(st.mean, 5.0, 0.15);
  EXPECT_NEAR(st.sigma, 2.0, 0.15);
  EXPECT_NEAR(st.percentile(0.5), 5.0, 0.2);
  // ~84% of a Gaussian lies above mean - sigma.
  EXPECT_NEAR(st.yield_above(3.0), 0.84, 0.03);
  EXPECT_LE(st.min, st.percentile(0.01));
  EXPECT_GE(st.max, st.percentile(0.99));
}

TEST(MonteCarlo, DeterministicForSeed0) {
  auto trial = [](std::uint64_t seed) {
    si::dsp::Xoshiro256 rng(seed);
    return rng.uniform();
  };
  const auto a = monte_carlo(100, trial, 7);
  const auto b = monte_carlo(100, trial, 7);
  const auto c = monte_carlo(100, trial, 8);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_NE(a.samples, c.samples);
}

TEST(MonteCarlo, PercentileEdges) {
  const auto st = monte_carlo(10, [](std::uint64_t s) {
    return static_cast<double>(s % 100);
  });
  EXPECT_DOUBLE_EQ(st.percentile(0.0), st.min);
  EXPECT_DOUBLE_EQ(st.percentile(1.0), st.max);
  EXPECT_THROW(si::analysis::McStatistics{}.percentile(0.5),
               std::logic_error);
}

TEST(MonteCarlo, EmptyStatisticsThrowSymmetrically) {
  // Contract: both accessors reject an empty statistics object —
  // yield_above used to return a silent (and wrong) 0.0.
  const si::analysis::McStatistics empty;
  EXPECT_THROW(empty.percentile(0.5), std::logic_error);
  EXPECT_THROW(empty.yield_above(0.0), std::logic_error);
}

// A trial expensive and seed-sensitive enough that any seeding or
// ordering bug in the parallel path shows up in the sample vector.
double nontrivial_trial(std::uint64_t seed) {
  si::dsp::Xoshiro256 rng(seed);
  double acc = 0.0;
  for (int k = 0; k < 500; ++k) acc += rng.normal() * std::sin(0.01 * k);
  return acc;
}

TEST(MonteCarlo, ParallelBitIdenticalToSerialAcrossThreadCounts) {
  const int runs = 257;  // awkward size: not a multiple of any grain
  McOptions serial_opts;
  serial_opts.seed0 = 99;
  serial_opts.parallel = false;
  const auto serial = monte_carlo(runs, nontrivial_trial, serial_opts);

  for (unsigned threads : {1u, 2u, 8u}) {
    si::runtime::set_thread_count(threads);
    McOptions opts;
    opts.seed0 = 99;
    const auto par = monte_carlo(runs, nontrivial_trial, opts);
    EXPECT_EQ(serial.samples, par.samples)
        << "samples diverged at " << threads << " thread(s)";
    EXPECT_DOUBLE_EQ(serial.mean, par.mean);
    EXPECT_DOUBLE_EQ(serial.sigma, par.sigma);
  }
  si::runtime::set_thread_count(0);
}

TEST(MonteCarlo, ExplicitGrainStillBitIdentical) {
  si::runtime::set_thread_count(4);
  McOptions reference;
  reference.seed0 = 5;
  reference.parallel = false;
  const auto serial = monte_carlo(100, nontrivial_trial, reference);
  for (std::size_t grain : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
    McOptions opts;
    opts.seed0 = 5;
    opts.grain = grain;
    EXPECT_EQ(serial.samples, monte_carlo(100, nontrivial_trial, opts).samples);
  }
  si::runtime::set_thread_count(0);
}

TEST(MonteCarlo, CachedRunSkipsTrialsAndMatches) {
  si::runtime::series_cache().clear();
  std::atomic<int> calls{0};
  auto trial = [&calls](std::uint64_t seed) {
    calls.fetch_add(1);
    return static_cast<double>(seed % 1000);
  };
  McOptions opts;
  opts.seed0 = 3;
  opts.cache_key = si::runtime::Fnv1a().str("test.cached_run").digest();
  const auto first = monte_carlo(40, trial, opts);
  const int calls_after_first = calls.load();
  EXPECT_EQ(calls_after_first, 40);
  const auto second = monte_carlo(40, trial, opts);
  EXPECT_EQ(calls.load(), calls_after_first);  // served from cache
  EXPECT_EQ(first.samples, second.samples);
  // A different root seed is a different content address.
  opts.seed0 = 4;
  const auto third = monte_carlo(40, trial, opts);
  EXPECT_EQ(calls.load(), calls_after_first + 40);
  EXPECT_NE(first.samples, third.samples);
}

TEST(MonteCarlo, RejectsZeroRuns) {
  EXPECT_THROW(monte_carlo(0, [](std::uint64_t) { return 0.0; }),
               std::invalid_argument);
}

TEST(MonteCarlo, CmffResidualDistributionScalesWithMismatch) {
  // Yield-style use: the CMFF residual CM gain across mismatch draws.
  auto sigma_of = [](double mismatch) {
    const auto st = monte_carlo(400, [mismatch](std::uint64_t seed) {
      si::cells::CmffParams p;
      p.mirror_mismatch_sigma = mismatch;
      si::cells::Cmff ff(p, seed);
      return std::abs(ff.residual_cm_gain());
    });
    return st.percentile(0.9);
  };
  const double p90_small = sigma_of(1e-3);
  const double p90_large = sigma_of(5e-3);
  EXPECT_NEAR(p90_large / p90_small, 5.0, 1.5);
}

}  // namespace
