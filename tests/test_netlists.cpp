#include <gtest/gtest.h>

#include <cmath>

#include "si/netlists.hpp"
#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/transient.hpp"

namespace {

using namespace si::spice;
using namespace si::cells::netlists;

TEST(Netlists, MemoryPairQuiescentPoint) {
  Circuit c;
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  MemoryPairOptions opt;
  opt.switches_always_on = true;
  const auto h = build_class_ab_memory_pair(c, opt, "m_");
  dc_operating_point(c);
  // Both memory devices saturated, a few uA quiescent, drain at ~Vdd/2.
  EXPECT_EQ(h.mn->region(), MosRegion::kSaturation);
  EXPECT_EQ(h.mp->region(), MosRegion::kSaturation);
  EXPECT_NEAR(h.mn->id(), 3.7e-6, 1e-6);
  EXPECT_NEAR(h.mn->id(), -h.mp->id(), 1e-9);
}

TEST(Netlists, MemoryPairClassAbAbsorbsLargeInput) {
  // Push 3x the quiescent current into the sampling node: the pair
  // re-biases and absorbs it (class AB).
  Circuit c;
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  MemoryPairOptions opt;
  opt.switches_always_on = true;
  const auto h = build_class_ab_memory_pair(c, opt, "m_");
  c.add<CurrentSource>("Iin", c.ground(), h.d, 12e-6);
  dc_operating_point(c);
  // KCL: I(MN) - |I(MP)| = 12 uA.
  EXPECT_NEAR(h.mn->id() + h.mp->id(), 12e-6, 0.2e-6);
  EXPECT_EQ(h.mn->region(), MosRegion::kSaturation);
}

TEST(Netlists, MemoryPairHoldsSampleWhenSwitchesOpen) {
  Circuit c;
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  MemoryPairOptions opt;  // clocked ideal switches
  const auto h = build_class_ab_memory_pair(c, opt, "m_");
  c.add<CurrentSource>("Iin", c.ground(), h.d, 8e-6);
  TransientOptions topt;
  topt.t_stop = opt.clock_period * 0.75;
  topt.dt = opt.clock_period / 1000.0;
  Transient tr(c, topt);
  tr.probe_voltage("m_gn");
  const auto res = tr.run();
  const auto& gn = res.signal("v(m_gn)");
  // Gate voltage settles during phase 1 and holds through phase 2.
  const auto idx = [&](double frac) {
    return static_cast<std::size_t>(
        std::llround(frac * opt.clock_period / topt.dt));
  };
  const double v_sampled = gn[idx(0.45)];
  const double v_held = gn[idx(0.74)];
  EXPECT_NEAR(v_held, v_sampled, 5e-3);
  EXPECT_GT(v_sampled, 1.0);  // biased above threshold
}

TEST(Netlists, GgaBiasPoint) {
  Circuit c;
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  GgaOptions opt;
  const auto g = build_gga(c, opt, "g_");
  // Pin the high-impedance output with an ideal load (standalone,
  // without the memory pair that normally loads it).
  c.add<VoltageSource>("Vload", g.out, c.ground(), 2.0);
  dc_operating_point(c);
  // TG saturated carrying the bias current.
  EXPECT_EQ(g.tg->region(), MosRegion::kSaturation);
  EXPECT_NEAR(g.tg->id(), opt.bias_current, 1e-7);
}

TEST(Netlists, GgaLowersInputImpedance) {
  // The common-gate input presents roughly 1/gm at its source.
  Circuit c;
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  GgaOptions opt;
  const auto g = build_gga(c, opt, "g_");
  c.add<VoltageSource>("Vload", g.out, c.ground(), 2.0);
  auto& iin = c.add<CurrentSource>("Iin", c.ground(), g.in, 0.0);
  iin.set_ac_magnitude(1.0);
  dc_operating_point(c);
  const auto ac = ac_analysis(c, {10e3});
  const double zin = std::abs(ac.voltage(c, 0, g.in));
  EXPECT_NEAR(zin, 1.0 / g.tg->gm(), 0.2 / g.tg->gm());
}

TEST(Netlists, CmffCancelsCommonModeStep) {
  auto run = [](double icm) {
    Circuit c;
    c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
    CmffOptions opt;
    const auto h = build_cmff(c, opt, "f_");
    const double bias = 40e-6;
    c.add<CurrentSource>("Ip", c.node("vdd"), h.in_p, bias + icm);
    c.add<CurrentSource>("Im", c.node("vdd"), h.in_m, bias + icm);
    auto& vp = c.add<VoltageSource>("Vop", h.out_p, c.ground(), 1.5);
    auto& vm = c.add<VoltageSource>("Vom", h.out_m, c.ground(), 1.5);
    const auto r = dc_operating_point(c);
    SolutionView sol(c, r.x);
    return 0.5 * (sol.branch_current(vp.branch()) +
                  sol.branch_current(vm.branch()));
  };
  const double base = run(0.0);
  const double stepped = run(5e-6);
  // The CM step is cancelled to a few percent by the mirrors.
  EXPECT_LT(std::abs(stepped - base), 0.1 * 5e-6);
}

TEST(Netlists, CmffPassesDifferentialSignal) {
  Circuit c;
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  CmffOptions opt;
  const auto h = build_cmff(c, opt, "f_");
  const double bias = 40e-6, idm = 6e-6;
  c.add<CurrentSource>("Ip", c.node("vdd"), h.in_p, bias + 0.5 * idm);
  c.add<CurrentSource>("Im", c.node("vdd"), h.in_m, bias - 0.5 * idm);
  auto& vp = c.add<VoltageSource>("Vop", h.out_p, c.ground(), 1.5);
  auto& vm = c.add<VoltageSource>("Vom", h.out_m, c.ground(), 1.5);
  const auto r = dc_operating_point(c);
  SolutionView sol(c, r.x);
  const double dm_out =
      sol.branch_current(vp.branch()) - sol.branch_current(vm.branch());
  EXPECT_NEAR(std::abs(dm_out), idm, 0.15 * idm);
}

TEST(Netlists, ProcessOptionDefaults) {
  ProcessOptions pr;
  const auto n = pr.nmos(10e-6);
  EXPECT_DOUBLE_EQ(n.w, 10e-6);
  EXPECT_DOUBLE_EQ(n.kp, pr.kp_n);
  EXPECT_DOUBLE_EQ(n.vt0, pr.vt_n);
  const auto p = pr.pmos(10e-6, 1e-15);
  EXPECT_DOUBLE_EQ(p.kp, pr.kp_p);
  EXPECT_DOUBLE_EQ(p.cgs, 1e-15);
}


TEST(Netlists, DelayStageTransfersSampleAcrossOnePeriod) {
  // A full transistor-level SI delay: pair 1 samples the input current
  // during phase 1; pair 2 takes the held value during phase 2; the
  // stage output (pair 2's held current) is measured during the NEXT
  // phase 1 and must equal the input of the PREVIOUS period.
  Circuit c;
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  DelayStageOptions opt;
  const double T = opt.pair.clock_period;
  const auto h = build_delay_stage(c, opt, "s_");

  // Staircase input: level changes at each period boundary, applied
  // only while pair 1 samples (turned off just after the gates open).
  auto level_at = [](int period) { return (period % 2 == 0) ? 6e-6 : -3e-6; };
  std::vector<std::pair<double, double>> pts;
  for (int k = 0; k < 6; ++k) {
    const double t0 = k * T;
    pts.push_back({t0 + 0.001 * T, level_at(k)});
    pts.push_back({t0 + 0.49 * T, level_at(k)});
    pts.push_back({t0 + 0.51 * T, 0.0});
    pts.push_back({t0 + 0.999 * T, 0.0});
  }
  c.add<CurrentSource>("Iin", c.ground(), h.in,
                       std::make_unique<PwlWave>(std::move(pts)));

  // Output clamp during phase 1: reads pair 2's held current.
  const TwoPhaseClock clk{T, 3.3, 0.0, T / 100.0, T / 50.0};
  const NodeId meas = c.node("meas");
  c.add<Switch>("Sout", h.mid, meas, clk.phase1(), 10.0, 1e12);
  auto& vmeas = c.add<VoltageSource>("Vmeas", meas, c.ground(), 1.65);

  TransientOptions topt;
  topt.t_stop = 4.0 * T;
  topt.dt = T / 1500.0;
  Transient tr(c, topt);
  std::vector<double> held(5, 0.0);
  tr.run([&](double t, const SolutionView& sol) {
    const int period = static_cast<int>(t / T);
    const double frac = t / T - period;
    if (period >= 1 && period < 5 && frac > 0.30 && frac < 0.45)
      held[static_cast<std::size_t>(period)] =
          sol.branch_current(vmeas.branch());
  });
  // During period k's phase 1, the output reflects the input sampled in
  // period k-1 (one full delay, sign preserved through two inversions).
  for (int k = 2; k <= 3; ++k) {
    EXPECT_NEAR(held[static_cast<std::size_t>(k)], level_at(k - 1),
                0.4e-6)
        << "period " << k;
  }
}


TEST(Netlists, BoostedCellVirtualGround) {
  Circuit c;
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  BoostedCellOptions opt;
  const auto b = build_gga_boosted_cell(c, opt, "b_");
  auto& iin = c.add<CurrentSource>("Iin", c.ground(), b.in, 0.0);
  iin.set_ac_magnitude(1.0);
  dc_operating_point(c);
  EXPECT_EQ(b.gga.tg->region(), MosRegion::kSaturation);
  const auto ac = ac_analysis(c, {100e3});
  const double zin = std::abs(ac.voltage(c, 0, b.in));
  // Orders of magnitude below the bare 1/(gm_n+gm_p) ~ 56 kohm.
  EXPECT_LT(zin, 1e3);
}

}  // namespace
