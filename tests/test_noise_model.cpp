#include <gtest/gtest.h>

#include <cmath>

#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"
#include "si/noise_model.hpp"

namespace {

using si::cells::CellNoise;
using si::cells::NoiseBudget;
using si::cells::PinkNoise;

TEST(PinkNoise, RmsMatchesTarget) {
  PinkNoise p(2.5, 16, 7);
  const int n = 200000;
  double s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = p.next();
    s2 += v * v;
  }
  EXPECT_NEAR(std::sqrt(s2 / n), 2.5, 0.4);
}

TEST(PinkNoise, SpectrumFallsWithFrequency) {
  PinkNoise p(1.0, 16, 9);
  const std::size_t n = 1 << 16;
  std::vector<double> x(n);
  for (auto& v : x) v = p.next();
  const auto s = si::dsp::compute_power_spectrum(x, 1.0);
  // Compare band powers per unit bandwidth across two decades.
  const double lo = s.raw_band_sum(0.001, 0.002) / 0.001;
  const double hi = s.raw_band_sum(0.1, 0.2) / 0.1;
  // 1/f: density ratio ~ 100x over two decades (Voss approximation is
  // coarse, accept anything clearly falling).
  EXPECT_GT(lo / hi, 10.0);
}

TEST(PinkNoise, RejectsBadOctaves) {
  EXPECT_THROW(PinkNoise(1.0, 0, 1), std::invalid_argument);
}

TEST(CellNoise, ThermalOnlyIsWhite) {
  CellNoise n(1e-9, 0.0, false, 3);
  const std::size_t count = 1 << 15;
  std::vector<double> x(count);
  for (auto& v : x) v = n.next();
  const auto s = si::dsp::compute_power_spectrum(x, 1.0);
  const double lo = s.raw_band_sum(0.01, 0.05);
  const double hi = s.raw_band_sum(0.4, 0.44);
  EXPECT_NEAR(lo / hi, 1.0, 0.35);  // flat within statistics
}

TEST(CellNoise, CdsSuppressesLowFrequencyFlicker) {
  const std::size_t count = 1 << 16;
  auto band_ratio = [&](bool cds) {
    CellNoise n(0.0, 1e-9, cds, 11);
    std::vector<double> x(count);
    for (auto& v : x) v = n.next();
    const auto s = si::dsp::compute_power_spectrum(x, 1.0);
    return s.raw_band_sum(0.0005, 0.005);
  };
  const double without = band_ratio(false);
  const double with_cds = band_ratio(true);
  // CDS high-passes the 1/f: low-frequency power drops by >20 dB.
  EXPECT_LT(with_cds, without / 100.0);
}

TEST(CellNoise, DeterministicForSeed) {
  CellNoise a(1e-9, 1e-9, true, 5);
  CellNoise b(1e-9, 1e-9, true, 5);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.next(), b.next());
}

TEST(NoiseBudget, PaperNumbers) {
  // Default budget reproduces the paper's ~33 nA rms cell noise and the
  // associated SNR statements.
  NoiseBudget b;
  EXPECT_NEAR(b.cell_current_rms(), 33e-9, 3e-9);
  // "With an input current of 16 uA, the delay line would deliver a SNR
  // about 54 dB" (we land at the measured ~50 dB level).
  EXPECT_NEAR(b.snr_db(16e-6), 50.6, 2.0);
}

TEST(NoiseBudget, ScalesWithCapacitance) {
  NoiseBudget small;
  NoiseBudget big = small;
  big.cgs = 4.0 * small.cgs;
  // v_n ~ 1/sqrt(C): doubling C twice halves the rms noise.
  EXPECT_NEAR(big.cell_current_rms(), small.cell_current_rms() / 2.0,
              1e-12);
}

TEST(NoiseBudget, SnrGrowsWithSignal) {
  NoiseBudget b;
  EXPECT_NEAR(b.snr_db(16e-6) - b.snr_db(8e-6), 6.02, 0.01);
}

}  // namespace
