// Telemetry layer semantics: counter/timer/histogram recording, the
// runtime enable gate, registry identity, the span ring, JSON snapshot
// shape, and the disabled-mode no-op guarantees.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.hpp"

namespace {

namespace obs = si::obs;

#if SI_OBS_ENABLED

/// Enables telemetry for one test and restores the disabled default.
class ObsEnabled {
 public:
  ObsEnabled() { obs::set_enabled(true); }
  ~ObsEnabled() { obs::set_enabled(false); }
};

TEST(Obs, CounterRecordsOnlyWhenEnabled) {
  ObsEnabled on;
  obs::Counter& c = obs::counter("test.counter_gate");
  c.reset();
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);

  obs::set_enabled(false);
  c.add(100);
  EXPECT_EQ(c.value(), 5u) << "disabled counter must not record";
  obs::set_enabled(true);
  c.add();
  EXPECT_EQ(c.value(), 6u);
}

TEST(Obs, RegistryReturnsTheSameInstrumentForTheSameName) {
  EXPECT_EQ(&obs::counter("test.same"), &obs::counter("test.same"));
  EXPECT_NE(&obs::counter("test.same"), &obs::counter("test.other"));
  EXPECT_EQ(&obs::timer("test.same_t"), &obs::timer("test.same_t"));
  EXPECT_EQ(&obs::histogram("test.same_h"), &obs::histogram("test.same_h"));
}

TEST(Obs, ScopedTimerAccumulatesIntervals) {
  ObsEnabled on;
  obs::Timer& t = obs::timer("test.scoped_timer");
  t.reset();
  for (int i = 0; i < 3; ++i) {
    obs::ScopedTimer timed(t);
    // Do a little measurable work.
    volatile double acc = 0.0;
    for (int k = 0; k < 1000; ++k) acc = acc + k;
  }
  EXPECT_EQ(t.count(), 3u);
  EXPECT_GT(t.total_ns(), 0u);
}

TEST(Obs, TimerIgnoredWhenDisabled) {
  obs::set_enabled(false);
  obs::Timer& t = obs::timer("test.disabled_timer");
  t.reset();
  {
    obs::ScopedTimer timed(t);
  }
  t.record_ns(12345);
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.total_ns(), 0u);
}

TEST(Obs, HistogramTracksMomentsAndPowerOfTwoBins) {
  ObsEnabled on;
  obs::Histogram& h = obs::histogram("test.hist");
  h.reset();
  EXPECT_EQ(h.min(), 0.0);  // empty histogram reports zeros, not sentinels
  EXPECT_EQ(h.max(), 0.0);
  h.record(1e-9);
  h.record(2e-9);
  h.record(4e-9);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 4e-9);
  EXPECT_NEAR(h.sum(), 7e-9, 1e-20);
  // Each value lands in a bin whose [lo, 2*lo) range contains it.
  std::uint64_t binned = 0;
  for (int k = 0; k < obs::Histogram::kBins; ++k) {
    const std::uint64_t n = h.bin(k);
    binned += n;
    if (n) {
      EXPECT_LE(obs::Histogram::bin_lo(k), 4e-9);
      EXPECT_GT(2.0 * obs::Histogram::bin_lo(k), 1e-9);
    }
  }
  EXPECT_EQ(binned, 3u);
}

TEST(Obs, HistogramIsThreadSafe) {
  ObsEnabled on;
  obs::Histogram& h = obs::histogram("test.hist_mt");
  h.reset();
  constexpr int kThreads = 4;
  constexpr int kPer = 1000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i)
    ts.emplace_back([&h] {
      for (int k = 1; k <= kPer; ++k) h.record(static_cast<double>(k));
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPer));
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(kPer));
  EXPECT_NEAR(h.sum(), kThreads * (kPer * (kPer + 1) / 2.0), 1e-6);
}

TEST(Obs, TraceRingKeepsTheNewestEvents) {
  ObsEnabled on;
  obs::reset();
  const std::size_t overfill = obs::kTraceRingCapacity + 37;
  for (std::size_t i = 0; i < overfill; ++i) {
    obs::TraceSpan span("test.span");
  }
  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), obs::kTraceRingCapacity);
  // Oldest retained event is the one that displaced nothing yet.
  EXPECT_EQ(events.front().seq, overfill - obs::kTraceRingCapacity);
  EXPECT_EQ(events.back().seq, overfill - 1);
  EXPECT_STREQ(events.back().name, "test.span");
}

TEST(Obs, SpansNotRecordedWhenDisabled) {
  ObsEnabled on;
  obs::reset();
  obs::set_enabled(false);
  {
    obs::TraceSpan span("test.dark_span");
  }
  EXPECT_TRUE(obs::trace_events().empty());
}

TEST(Obs, JsonSnapshotGolden) {
  ObsEnabled on;
  obs::reset();
  obs::counter("zz_golden.alpha").add(3);
  obs::counter("zz_golden.beta").add(7);
  obs::timer("zz_golden.t").record_ns(1500);
  obs::histogram("zz_golden.h").record(2.0);

  const std::string js = obs::snapshot_json();
  EXPECT_NE(js.find("\"compiled\": true"), std::string::npos);
  EXPECT_NE(js.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(js.find("\"zz_golden.alpha\": 3"), std::string::npos);
  EXPECT_NE(js.find("\"zz_golden.beta\": 7"), std::string::npos);
  EXPECT_NE(js.find("\"zz_golden.t\": {\"count\": 1, \"total_ns\": 1500, "
                    "\"mean_ns\": 1500}"),
            std::string::npos);
  EXPECT_NE(js.find("\"zz_golden.h\": {\"count\": 1, \"min\": 2, \"max\": 2, "
                    "\"mean\": 2, \"bins\": [{\"lo\": 2, \"count\": 1}]}"),
            std::string::npos);
  // Registry maps are ordered: alpha serializes before beta.
  EXPECT_LT(js.find("zz_golden.alpha"), js.find("zz_golden.beta"));
  // Structurally a JSON object with the four sections.
  EXPECT_EQ(js.front(), '{');
  EXPECT_EQ(js.back(), '}');
  for (const char* key : {"\"counters\": {", "\"timers\": {",
                          "\"histograms\": {", "\"spans\": ["})
    EXPECT_NE(js.find(key), std::string::npos) << key;
}

TEST(Obs, TableSnapshotListsInstruments) {
  ObsEnabled on;
  obs::reset();
  obs::counter("zz_table.n").add(42);
  const std::string table = obs::snapshot_table();
  EXPECT_NE(table.find("zz_table.n"), std::string::npos);
  EXPECT_NE(table.find("42"), std::string::npos);
}

TEST(Obs, ResetZeroesInstrumentsAndRing) {
  ObsEnabled on;
  obs::Counter& c = obs::counter("test.reset_me");
  c.add(9);
  obs::timer("test.reset_t").record_ns(10);
  obs::histogram("test.reset_h").record(1.0);
  {
    obs::TraceSpan span("test.reset_span");
  }
  obs::reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(obs::timer("test.reset_t").count(), 0u);
  EXPECT_EQ(obs::histogram("test.reset_h").count(), 0u);
  EXPECT_TRUE(obs::trace_events().empty());
}

#else  // compiled out: every probe is a no-op and the snapshot says so

TEST(Obs, CompiledOutProbesAreNoOps) {
  obs::set_enabled(true);
  EXPECT_FALSE(obs::enabled());
  obs::Counter& c = obs::counter("test.noop");
  c.add(5);
  EXPECT_EQ(c.value(), 0u);
  obs::timer("test.noop_t").record_ns(100);
  EXPECT_EQ(obs::timer("test.noop_t").count(), 0u);
  obs::histogram("test.noop_h").record(1.0);
  EXPECT_EQ(obs::histogram("test.noop_h").count(), 0u);
  {
    obs::TraceSpan span("test.noop_span");
  }
  EXPECT_TRUE(obs::trace_events().empty());
  EXPECT_NE(obs::snapshot_json().find("\"compiled\": false"),
            std::string::npos);
}

#endif  // SI_OBS_ENABLED

}  // namespace
