#include <gtest/gtest.h>

#include "si/power_area.hpp"

namespace {

using si::cells::AreaModel;
using si::cells::CellCurrentBudget;
using si::cells::MemoryCellParams;
using si::cells::PowerModel;

TEST(Power, DelayLineNearPaperValue) {
  PowerModel power(3.3, CellCurrentBudget{});
  const auto r =
      power.delay_line(1, 16e-6, MemoryCellParams::paper_class_ab());
  EXPECT_NEAR(r.total_mw, 0.7, 0.2);  // paper: 0.7 mW
  EXPECT_GT(r.quiescent_mw(), 0.0);
  EXPECT_GT(r.signal_ma, 0.0);  // class AB carries the signal
}

TEST(Power, ModulatorNearPaperValue) {
  PowerModel power(3.3, CellCurrentBudget{});
  const auto plain = power.modulator(6e-6, false);
  const auto chop = power.modulator(6e-6, true);
  EXPECT_NEAR(plain.total_mw, 3.2, 0.4);  // paper: 3.2 mW
  // Chopper switches carry no standing current: identical power.
  EXPECT_DOUBLE_EQ(plain.total_mw, chop.total_mw);
}

TEST(Power, ClassAScalesWithSignalRange) {
  PowerModel power(3.3, CellCurrentBudget{});
  MemoryCellParams a = MemoryCellParams::class_a_baseline();
  const auto small = power.delay_line(1, 16e-6, a);
  const auto large = power.delay_line(1, 64e-6, a);
  EXPECT_GT(large.total_mw, small.total_mw * 3.0);
  // Class AB grows much slower with range.
  MemoryCellParams ab = MemoryCellParams::paper_class_ab();
  const auto ab_small = power.delay_line(1, 16e-6, ab);
  const auto ab_large = power.delay_line(1, 64e-6, ab);
  EXPECT_LT(ab_large.total_mw / ab_small.total_mw,
            large.total_mw / small.total_mw);
}

TEST(Power, ScalesWithSupply) {
  const CellCurrentBudget b;
  PowerModel p33(3.3, b), p25(2.5, b);
  const auto r33 =
      p33.delay_line(1, 16e-6, MemoryCellParams::paper_class_ab());
  const auto r25 =
      p25.delay_line(1, 16e-6, MemoryCellParams::paper_class_ab());
  EXPECT_NEAR(r25.total_mw / r33.total_mw, 2.5 / 3.3, 1e-9);
}

TEST(Power, MoreDelaysMorePower) {
  PowerModel power(3.3, CellCurrentBudget{});
  const auto one =
      power.delay_line(1, 16e-6, MemoryCellParams::paper_class_ab());
  const auto four =
      power.delay_line(4, 16e-6, MemoryCellParams::paper_class_ab());
  EXPECT_NEAR(four.total_mw, 4.0 * one.total_mw, 1e-9);
}

TEST(Area, NearPaperValues) {
  AreaModel a;
  EXPECT_NEAR(a.delay_line_mm2(1), 0.06, 0.015);       // paper: 0.06
  EXPECT_NEAR(a.modulator_mm2(false), 0.21, 0.03);     // paper: 0.21
  EXPECT_NEAR(a.modulator_mm2(true), 0.26, 0.03);      // paper: 0.26
}

TEST(Area, ChopperAddsOnlySwitchesAndRouting) {
  AreaModel a;
  const double delta = a.modulator_mm2(true) - a.modulator_mm2(false);
  EXPECT_GT(delta, 0.0);
  EXPECT_LT(delta, 0.06);  // "no penalty in complexity except choppers"
}

TEST(Area, GrowsWithDelayCount) {
  AreaModel a;
  EXPECT_GT(a.delay_line_mm2(4), a.delay_line_mm2(1) * 2.0);
}

}  // namespace
