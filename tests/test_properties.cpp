// Cross-module property tests: parameterized sweeps over device
// geometries, integrator accuracy orders, and analytic noise/DR
// relations the library must respect everywhere.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <tuple>

#include "dsm/linear_model.hpp"
#include "dsp/fft.hpp"
#include "dsp/signal.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/elements.hpp"
#include "spice/mosfet.hpp"
#include "spice/transient.hpp"

namespace {

using namespace si::spice;

// ---------------------------------------------------------------- MOSFET

/// (W um, L um, Vov) grid: saturation current must follow the square law.
class MosfetSquareLaw
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(MosfetSquareLaw, SaturationCurrentMatchesFormula) {
  const auto [w_um, l_um, vov] = GetParam();
  MosfetParams p;
  p.w = w_um * 1e-6;
  p.l = l_um * 1e-6;
  p.kp = 100e-6;
  p.vt0 = 0.8;
  p.lambda = 0.0;

  Circuit c;
  const NodeId d = c.node("d");
  const NodeId g = c.node("g");
  c.add<VoltageSource>("Vg", g, c.ground(), p.vt0 + vov);
  c.add<VoltageSource>("Vd", d, c.ground(), vov + 1.0);  // saturated
  auto& m = c.add<Mosfet>("M1", MosType::kNmos, d, g, c.ground(), p);
  dc_operating_point(c);

  const double expected = 0.5 * p.beta() * vov * vov;
  EXPECT_NEAR(m.id(), expected, 1e-6 * expected + 1e-12);
  EXPECT_NEAR(m.gm(), p.beta() * vov, 1e-6 * p.beta() * vov + 1e-12);
  EXPECT_EQ(m.region(), MosRegion::kSaturation);
}

INSTANTIATE_TEST_SUITE_P(
    GeometryGrid, MosfetSquareLaw,
    ::testing::Combine(::testing::Values(2.0, 10.0, 50.0),
                       ::testing::Values(0.8, 2.0, 20.0),
                       ::testing::Values(0.1, 0.3, 0.8)));

/// Body effect: threshold rises with source-bulk reverse bias.
class MosfetBodyEffect : public ::testing::TestWithParam<double> {};

TEST_P(MosfetBodyEffect, ThresholdShiftMatchesFormula) {
  const double vsb = GetParam();
  MosfetParams p;
  p.lambda = 0.0;
  p.gamma = 0.45;
  p.phi = 0.7;
  Circuit c;
  const NodeId d = c.node("d");
  const NodeId g = c.node("g");
  const NodeId s = c.node("s");
  c.add<VoltageSource>("Vs", s, c.ground(), vsb);  // bulk at ground
  c.add<VoltageSource>("Vg", g, c.ground(), vsb + 1.3);
  c.add<VoltageSource>("Vd", d, c.ground(), vsb + 2.0);
  auto& m = c.add<Mosfet>("M1", MosType::kNmos, d, g, s, c.ground(), p);
  dc_operating_point(c);
  const double vt =
      p.vt0 + p.gamma * (std::sqrt(p.phi + vsb) - std::sqrt(p.phi));
  const double vov = 1.3 - vt;
  EXPECT_NEAR(m.id(), 0.5 * p.beta() * vov * vov, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(VsbGrid, MosfetBodyEffect,
                         ::testing::Values(0.0, 0.25, 0.5, 1.0, 1.65));

// ----------------------------------------------------- integrator order

/// Trapezoidal integration converges ~O(dt^2), backward Euler ~O(dt):
/// halving dt should cut the RC step error by ~4x and ~2x respectively.
class IntegratorOrder : public ::testing::TestWithParam<Integrator> {};

namespace {
/// RC lowpass driven by a sine from zero state (smooth forcing, so the
/// methods exhibit their nominal orders).  Exact response:
///   v(t) = (sin wt - wT cos wt + wT e^{-t/T}) / (1 + (wT)^2).
double rc_error(Integrator method, double dt) {
  const double tau = 1e-3;
  const double f0 = 300.0;
  const double w = 2.0 * std::numbers::pi * f0;
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("V1", in, c.ground(),
                       std::make_unique<SineWave>(0.0, 1.0, f0));
  c.add<Resistor>("R1", in, out, 1e3);
  c.add<Capacitor>("C1", out, c.ground(), 1e-6);
  TransientOptions opt;
  opt.t_stop = 4e-3;
  opt.dt = dt;
  opt.integrator = method;
  Transient tr(c, opt);
  tr.probe_voltage("out");
  const auto res = tr.run();
  const double wt = w * tau;
  double worst = 0.0;
  for (std::size_t k = 1; k < res.time.size(); ++k) {
    const double t = res.time[k];
    const double expected = (std::sin(w * t) - wt * std::cos(w * t) +
                             wt * std::exp(-t / tau)) /
                            (1.0 + wt * wt);
    worst = std::max(worst,
                     std::abs(res.signal("v(out)")[k] - expected));
  }
  return worst;
}
}  // namespace

TEST_P(IntegratorOrder, ErrorShrinksAtExpectedRate) {
  const Integrator method = GetParam();
  const double e1 = rc_error(method, 40e-6);
  const double e2 = rc_error(method, 20e-6);
  const double rate = e1 / e2;
  if (method == Integrator::kTrapezoidal) {
    EXPECT_GT(rate, 3.0);  // ~4x for a 2nd-order method
  } else {
    EXPECT_GT(rate, 1.7);  // ~2x for a 1st-order method
    EXPECT_LT(rate, 3.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, IntegratorOrder,
                         ::testing::Values(Integrator::kTrapezoidal,
                                           Integrator::kBackwardEuler),
                         [](const auto& info) {
                           return info.param == Integrator::kTrapezoidal
                                      ? "trapezoidal"
                                      : "backward_euler";
                         });

// ------------------------------------------------------------- FFT sizes

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, ParsevalHoldsAcrossSizes) {
  const std::size_t n = GetParam();
  const auto x = si::dsp::white_noise(n, 1.0, n);
  std::vector<si::dsp::cplx> xc(x.begin(), x.end());
  const auto y = si::dsp::fft(xc);
  double te = 0.0, fe = 0.0;
  for (double v : x) te += v * v;
  for (const auto& v : y) fe += std::norm(v);
  EXPECT_NEAR(fe / static_cast<double>(n), te, 1e-8 * te);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(2u, 8u, 64u, 1024u, 16384u));

// -------------------------------------------- noise-limited DR relation

/// DR(noise, FS, OSR) must obey the closed form for any parameters:
/// +6.02 dB per FS doubling, +3.01 dB per OSR doubling, -6.02 dB per
/// noise doubling.
class DrRelation : public ::testing::TestWithParam<double> {};

TEST_P(DrRelation, ScalingLaws) {
  const double osr = GetParam();
  const double base = si::dsm::noise_limited_dr_db(33e-9, 6e-6, osr);
  EXPECT_NEAR(si::dsm::noise_limited_dr_db(33e-9, 12e-6, osr) - base, 6.02,
              0.01);
  EXPECT_NEAR(si::dsm::noise_limited_dr_db(66e-9, 6e-6, osr) - base, -6.02,
              0.01);
  EXPECT_NEAR(si::dsm::noise_limited_dr_db(33e-9, 6e-6, 2 * osr) - base,
              3.01, 0.01);
}

INSTANTIATE_TEST_SUITE_P(OsrGrid, DrRelation,
                         ::testing::Values(16.0, 64.0, 128.0, 512.0));

}  // namespace
