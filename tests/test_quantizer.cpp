#include <gtest/gtest.h>

#include "dsm/quantizer.hpp"

namespace {

using si::cells::Diff;
using si::dsm::CurrentDac;
using si::dsm::CurrentQuantizer;

TEST(Quantizer, SignDecision) {
  CurrentQuantizer q;
  EXPECT_EQ(q.decide(1e-9), +1);
  EXPECT_EQ(q.decide(-1e-9), -1);
  EXPECT_EQ(q.decide(0.0), +1);  // tie-break positive
}

TEST(Quantizer, OffsetShiftsThreshold) {
  CurrentQuantizer q(1e-6, 0.0);
  EXPECT_EQ(q.decide(0.5e-6), -1);
  EXPECT_EQ(q.decide(1.5e-6), +1);
}

TEST(Quantizer, HysteresisHoldsLastDecision) {
  CurrentQuantizer q(0.0, 1e-6);
  EXPECT_EQ(q.decide(2e-6), +1);
  // Inside the hysteresis band: stays +1 even for slightly negative.
  EXPECT_EQ(q.decide(-0.5e-6), +1);
  // Beyond the band: flips.
  EXPECT_EQ(q.decide(-2e-6), -1);
  // And now holds -1 for slightly positive.
  EXPECT_EQ(q.decide(0.5e-6), -1);
  q.reset();
  EXPECT_EQ(q.decide(0.5e-6), +1);
}

TEST(Dac, IdealLevels) {
  CurrentDac dac(6e-6, 0.0, 0.0, 1);
  EXPECT_DOUBLE_EQ(dac.positive_level(), 6e-6);
  EXPECT_DOUBLE_EQ(dac.negative_level(), -6e-6);
  EXPECT_DOUBLE_EQ(dac.convert(+1).dm(), 6e-6);
  EXPECT_DOUBLE_EQ(dac.convert(-1).dm(), -6e-6);
  EXPECT_DOUBLE_EQ(dac.convert(+1).cm(), 0.0);
}

TEST(Dac, MismatchMakesAsymmetricLevels) {
  CurrentDac dac(6e-6, 0.01, 0.0, 7);
  EXPECT_NE(dac.positive_level(), -dac.negative_level());
  EXPECT_NEAR(dac.positive_level(), 6e-6, 6e-6 * 0.05);
  EXPECT_NEAR(dac.negative_level(), -6e-6, 6e-6 * 0.05);
}

TEST(Dac, MismatchDeterministicPerSeed) {
  CurrentDac a(6e-6, 0.01, 0.0, 3);
  CurrentDac b(6e-6, 0.01, 0.0, 3);
  EXPECT_DOUBLE_EQ(a.positive_level(), b.positive_level());
  CurrentDac c(6e-6, 0.01, 0.0, 4);
  EXPECT_NE(a.positive_level(), c.positive_level());
}

TEST(Dac, NoiseVariesOutput) {
  CurrentDac dac(6e-6, 0.0, 1e-9, 5);
  const double first = dac.convert(+1).dm();
  bool varied = false;
  for (int i = 0; i < 10; ++i)
    if (dac.convert(+1).dm() != first) varied = true;
  EXPECT_TRUE(varied);
}

}  // namespace
