#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/env.hpp"
#include "runtime/parallel.hpp"
#include "runtime/result_cache.hpp"
#include "runtime/rng_stream.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace si::runtime;

// ---------------------------------------------------------------- pool

TEST(ThreadPool, StartStopAndResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int k = 0; k < 100; ++k)
    futures.push_back(pool.submit([k] { return k * k; }));
  for (int k = 0; k < 100; ++k) EXPECT_EQ(futures[k].get(), k * k);
}

TEST(ThreadPool, DrainsPendingTasksOnShutdown) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int k = 0; k < 64; ++k)
      pool.submit([&ran] { ran.fetch_add(1); });
  }  // destructor must run everything queued, then join
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int {
    throw std::runtime_error("trial exploded");
  });
  auto good = pool.submit([] { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, OnWorkerThreadDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
  auto inside = pool.submit([&pool] { return pool.on_worker_thread(); });
  EXPECT_TRUE(inside.get());
}

TEST(ThreadPool, SingleWorkerPoolStillWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

// ---------------------------------------------------------- parallel_for

TEST(ParallelFor, ZeroItemsNeverCallsBody) {
  std::atomic<int> calls{0};
  parallel_for(0, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, OneItem) {
  std::atomic<int> sum{0};
  parallel_for(1, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 1);
}

TEST(ParallelFor, FewerItemsThanThreads) {
  set_thread_count(8);
  std::vector<std::atomic<int>> touched(3);
  parallel_for(
      3,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
      },
      /*grain=*/1);
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
  set_thread_count(0);
}

TEST(ParallelFor, CoversRangeExactlyOnceForAwkwardGrains) {
  for (std::size_t grain : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                            std::size_t{1000}}) {
    std::vector<std::atomic<int>> touched(257);
    parallel_for(
        257,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
        },
        grain);
    long total = 0;
    for (auto& t : touched) total += t.load();
    EXPECT_EQ(total, 257);
  }
}

TEST(ParallelFor, SingleThreadConfigRunsInline) {
  set_thread_count(1);
  EXPECT_EQ(thread_count(), 1u);
  const auto caller = std::this_thread::get_id();
  parallel_for(100, [&](std::size_t, std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  set_thread_count(0);
}

TEST(ParallelFor, ExceptionInBodyPropagates) {
  set_thread_count(4);
  EXPECT_THROW(parallel_for(
                   100,
                   [](std::size_t begin, std::size_t) {
                     if (begin == 0) throw std::invalid_argument("bad chunk");
                   },
                   /*grain=*/10),
               std::invalid_argument);
  set_thread_count(0);
}

TEST(ParallelFor, NestedCallRunsInlineInsteadOfDeadlocking) {
  set_thread_count(2);
  std::atomic<long> sum{0};
  parallel_for(
      8,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          // Inner region from a pool worker must not block on the pool.
          parallel_for(4, [&](std::size_t b, std::size_t e) {
            sum.fetch_add(static_cast<long>(e - b));
          });
        }
      },
      /*grain=*/1);
  EXPECT_EQ(sum.load(), 8 * 4);
  set_thread_count(0);
}

TEST(ParallelMap, PreservesOrder) {
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  const auto out =
      parallel_map(items, [](const int& v) { return 2 * v + 1; }, 1);
  ASSERT_EQ(out.size(), items.size());
  for (int k = 0; k < 100; ++k) EXPECT_EQ(out[static_cast<std::size_t>(k)], 2 * k + 1);
}

// ------------------------------------------------------------- rng

TEST(RngStream, Splitmix64KnownVector) {
  // Reference outputs of splitmix64 from seed 0 (Steele/Lea/Flood).
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64_next(s), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64_next(s), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(splitmix64_next(s), 0x06C45D188009454FULL);
}

TEST(RngStream, TrialSeedMatchesHistoricalFormula) {
  // The serial monte_carlo contract: changing this breaks every
  // published number in the benches.
  EXPECT_EQ(trial_seed(1, 0), 0x9E3779B97F4A7C15ULL + 1);
  EXPECT_EQ(trial_seed(7, 3), 7 * 0x9E3779B97F4A7C15ULL +
                                  3 * 0xD1B54A32D192ED03ULL + 1);
}

TEST(RngStream, StreamsAreDecorrelatedAndDeterministic) {
  StreamSplitter split(42);
  EXPECT_EQ(split.seed_of(5), StreamSplitter(42).seed_of(5));
  EXPECT_NE(split.seed_of(0), split.seed_of(1));
  auto a = split.stream(0);
  auto b = split.stream(1);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RngStream, UniformInRangeNormalHasMoments) {
  RngStream rng(123);
  double s1 = 0.0, s2 = 0.0;
  const int n = 20000;
  for (int k = 0; k < n; ++k) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double g = rng.normal();
    s1 += g;
    s2 += g * g;
  }
  EXPECT_NEAR(s1 / n, 0.0, 0.03);
  EXPECT_NEAR(s2 / n, 1.0, 0.05);
}

TEST(RngStream, ParallelStreamDrawsMatchSerialAcrossThreadCounts) {
  // The determinism contract end-to-end: per-index streams drawn in a
  // parallel_for must reproduce the serial sequence bit-for-bit.
  auto draw_all = [](unsigned threads) {
    set_thread_count(threads);
    std::vector<double> out(97);
    parallel_for(
        out.size(),
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            RngStream rng(stream_seed(7, i));
            out[i] = rng.normal();
          }
        },
        /*grain=*/1);
    set_thread_count(0);
    return out;
  };
  const auto serial = draw_all(1);
  EXPECT_EQ(serial, draw_all(2));
  EXPECT_EQ(serial, draw_all(8));
}

// ------------------------------------------------------------- cache

TEST(ResultCache, HitMissCounters) {
  ResultCache<double> cache(8);
  EXPECT_FALSE(cache.lookup(1));
  cache.store(1, 3.5);
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit);
  EXPECT_DOUBLE_EQ(*hit, 3.5);
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.evictions, 0u);
}

TEST(ResultCache, LruEviction) {
  ResultCache<double> cache(2);
  cache.store(1, 1.0);
  cache.store(2, 2.0);
  EXPECT_TRUE(cache.lookup(1));  // 1 is now most-recent
  cache.store(3, 3.0);           // evicts 2 (least recent)
  EXPECT_FALSE(cache.lookup(2));
  EXPECT_TRUE(cache.lookup(1));
  EXPECT_TRUE(cache.lookup(3));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCache, SharedSnapshotSurvivesEviction) {
  // A caller that holds the shared_ptr from lookup() must keep a valid
  // value even after the entry is evicted — eviction drops the cache's
  // reference, not the caller's.
  ResultCache<std::vector<double>> cache(1);
  cache.store(1, std::vector<double>{4.0, 5.0});
  const auto held = cache.lookup(1);
  ASSERT_TRUE(held);
  cache.store(2, std::vector<double>{6.0});  // evicts key 1
  EXPECT_FALSE(cache.lookup(1));
  ASSERT_EQ(held->size(), 2u);
  EXPECT_DOUBLE_EQ((*held)[0], 4.0);
  EXPECT_DOUBLE_EQ((*held)[1], 5.0);
}

TEST(ResultCache, StoreSharedRejectsNull) {
  // A null entry would make lookup() hits indistinguishable from misses.
  ResultCache<double> cache(2);
  EXPECT_THROW(cache.store_shared(1, nullptr), std::invalid_argument);
}

TEST(ResultCache, GetOrComputeComputesOnce) {
  ResultCache<std::vector<double>> cache(4);
  int computed = 0;
  auto compute = [&] {
    ++computed;
    return std::vector<double>{1.0, 2.0};
  };
  const auto a = cache.get_or_compute(9, compute);
  const auto b = cache.get_or_compute(9, compute);
  EXPECT_EQ(a, b);
  EXPECT_EQ(computed, 1);
}

TEST(ResultCache, ConcurrentAccessIsSafe) {
  ResultCache<double> cache(16);
  set_thread_count(4);
  parallel_for(
      1000,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const std::uint64_t key = i % 32;
          cache.store(key, static_cast<double>(key));
          const auto v = cache.lookup(key);
          if (v) {
            EXPECT_DOUBLE_EQ(*v, static_cast<double>(key));
          }
        }
      },
      /*grain=*/25);
  set_thread_count(0);
}

TEST(ResultCache, ConcurrentEvictionPressureKeepsSnapshotsIntact) {
  // Eviction racing with lookup is exactly the shared-cache service
  // path: capacity far below the working set forces every store to
  // evict while other threads hold and read snapshots.  The TSan lane
  // proves the locking; the content checks prove readers never observe
  // a half-evicted value.
  ResultCache<std::vector<double>> cache(4);
  set_thread_count(8);
  parallel_for(
      2000,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const std::uint64_t key = i % 64;  // 16x the capacity
          auto held = cache.get_or_compute(key, [key] {
            return std::vector<double>(32, static_cast<double>(key));
          });
          ASSERT_TRUE(held);
          ASSERT_EQ(held->size(), 32u);
          EXPECT_DOUBLE_EQ(held->front(), static_cast<double>(key));
          EXPECT_DOUBLE_EQ(held->back(), static_cast<double>(key));
          // Deliberately hold the snapshot across another thread's
          // evictions before re-reading it.
          const auto again = cache.lookup((key + 1) % 64);
          if (again) {
            EXPECT_DOUBLE_EQ(again->front(), (key + 1) % 64);
          }
          EXPECT_DOUBLE_EQ(held->front(), static_cast<double>(key));
        }
      },
      /*grain=*/16);
  set_thread_count(0);
  EXPECT_LE(cache.size(), 4u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(ResultCache, Fnv1aDigestIsOrderSensitive) {
  const auto a = Fnv1a().u64(1).u64(2).digest();
  const auto b = Fnv1a().u64(2).u64(1).digest();
  EXPECT_NE(a, b);
  EXPECT_EQ(Fnv1a().str("sweep").f64(0.5).digest(),
            Fnv1a().str("sweep").f64(0.5).digest());
  EXPECT_NE(Fnv1a().f64(0.5).digest(), Fnv1a().f64(-0.5).digest());
}

// ------------------------------------------------------------- config

TEST(RuntimeConfig, SetThreadCountOverridesAndResets) {
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  EXPECT_EQ(global_pool().size(), 3u);
  set_thread_count(5);
  EXPECT_EQ(global_pool().size(), 5u);
  set_thread_count(0);
  EXPECT_GE(thread_count(), 1u);
}

// --------------------------------------------------------- env parsing

// RAII setter so a throwing expectation can't leak the variable into
// later tests (the pool re-reads SI_RUNTIME_THREADS on every call).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
};

TEST(EnvParsing, UnsetOrEmptyMeansDefault) {
  ::unsetenv("SI_TEST_KNOB");
  EXPECT_FALSE(parse_env_long("SI_TEST_KNOB"));
  EXPECT_FALSE(parse_env_flag("SI_TEST_KNOB"));
  EXPECT_FALSE(parse_env_choice("SI_TEST_KNOB", {"a", "b"}));
  ScopedEnv env("SI_TEST_KNOB", "");
  EXPECT_FALSE(parse_env_long("SI_TEST_KNOB"));
  EXPECT_FALSE(parse_env_flag("SI_TEST_KNOB"));
  EXPECT_FALSE(parse_env_choice("SI_TEST_KNOB", {"a", "b"}));
}

TEST(EnvParsing, LongAcceptsExactNumbersOnly) {
  {
    ScopedEnv env("SI_TEST_KNOB", "8");
    EXPECT_EQ(parse_env_long("SI_TEST_KNOB"), 8);
  }
  {
    ScopedEnv env("SI_TEST_KNOB", "-3");
    EXPECT_EQ(parse_env_long("SI_TEST_KNOB"), -3);
  }
  // The regression that motivated the policy: "8x" used to strtol to 8.
  {
    ScopedEnv env("SI_TEST_KNOB", "8x");
    EXPECT_THROW(parse_env_long("SI_TEST_KNOB"), std::invalid_argument);
  }
  {
    ScopedEnv env("SI_TEST_KNOB", "abc");
    EXPECT_THROW(parse_env_long("SI_TEST_KNOB"), std::invalid_argument);
  }
  {
    ScopedEnv env("SI_TEST_KNOB", "99999999999999999999999");
    EXPECT_THROW(parse_env_long("SI_TEST_KNOB"), std::invalid_argument);
  }
  {  // in-range check is the caller's contract, not a silent clamp
    ScopedEnv env("SI_TEST_KNOB", "0");
    EXPECT_THROW(parse_env_long("SI_TEST_KNOB", 1, 64), std::invalid_argument);
  }
}

TEST(EnvParsing, FlagAcceptsDocumentedFormsOnly) {
  for (const char* t : {"1", "on", "true"}) {
    ScopedEnv env("SI_TEST_KNOB", t);
    EXPECT_EQ(parse_env_flag("SI_TEST_KNOB"), true) << t;
  }
  for (const char* f : {"0", "off", "false"}) {
    ScopedEnv env("SI_TEST_KNOB", f);
    EXPECT_EQ(parse_env_flag("SI_TEST_KNOB"), false) << f;
  }
  for (const char* bad : {"yes", "ON", "2", "tru"}) {
    ScopedEnv env("SI_TEST_KNOB", bad);
    EXPECT_THROW(parse_env_flag("SI_TEST_KNOB"), std::invalid_argument) << bad;
  }
}

TEST(EnvParsing, ChoiceRejectsTyposNamingValidValues) {
  {
    ScopedEnv env("SI_TEST_KNOB", "sparse");
    EXPECT_EQ(parse_env_choice("SI_TEST_KNOB", {"dense", "sparse"}), "sparse");
  }
  ScopedEnv env("SI_TEST_KNOB", "sprase");
  try {
    parse_env_choice("SI_TEST_KNOB", {"dense", "sparse"});
    FAIL() << "typo must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("dense"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("sparse"), std::string::npos);
  }
}

TEST(RuntimeConfig, MalformedThreadEnvThrowsInsteadOfTruncating) {
  // SI_RUNTIME_THREADS=8x historically ran on 8 threads; the strict
  // parser must surface the misconfiguration at the first lookup.
  set_thread_count(0);  // make thread_count() consult the environment
  {
    ScopedEnv env("SI_RUNTIME_THREADS", "8x");
    EXPECT_THROW(thread_count(), std::invalid_argument);
  }
  {
    ScopedEnv env("SI_RUNTIME_THREADS", "0");
    EXPECT_THROW(thread_count(), std::invalid_argument);
  }
  {
    ScopedEnv env("SI_RUNTIME_THREADS", "6");
    EXPECT_EQ(thread_count(), 6u);
  }
  EXPECT_GE(thread_count(), 1u);  // unset again: hardware default
}

}  // namespace
