// Domain-decomposition (BBD + Schur) solver tests: partition invariants
// fuzzed over randomized chain/modulator sizes, SchurLu vs dense LU on
// crafted bordered systems, per-block pivot-drift recovery, DC and
// %.6g transient waveform parity vs the flat sparse and dense solvers
// on the Table 1 / Table 2 netlists, pattern-cache invalidation on
// Circuit::revision() bumps, sticky fallback on degenerate partitions,
// and bit-identical results at thread counts {1, 2, 8}.
//
// (The allocation-free-after-warm-up assertion lives in
// test_transient_alloc.cpp, which owns the global operator-new
// instrumentation.)
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numbers>
#include <random>
#include <string>
#include <vector>

#include "linalg/schur.hpp"
#include "runtime/parallel.hpp"
#include "si/netlists.hpp"
#include "spice/mna.hpp"
#include "spice/transient.hpp"

namespace {

using namespace si::linalg;
using namespace si::spice;
using namespace si::cells::netlists;

/// Runs `run` with SI_SOLVER forced to `kind`, restoring the prior
/// value afterwards.
template <typename F>
auto with_solver(const char* kind, F run) {
  std::string saved;
  bool had = false;
  if (const char* v = std::getenv("SI_SOLVER")) {
    saved = v;
    had = true;
  }
  setenv("SI_SOLVER", kind, 1);
  auto result = run();
  if (had)
    setenv("SI_SOLVER", saved.c_str(), 1);
  else
    unsetenv("SI_SOLVER");
  return result;
}

std::string fmt6(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void expect_signals_match(const TransientResult& a, const TransientResult& b,
                          const char* what) {
  ASSERT_EQ(a.time.size(), b.time.size()) << what;
  ASSERT_EQ(a.signals.size(), b.signals.size()) << what;
  for (const auto& [label, av] : a.signals) {
    const auto& bv = b.signal(label);
    ASSERT_EQ(av.size(), bv.size()) << what << " " << label;
    for (std::size_t k = 0; k < av.size(); ++k) {
      EXPECT_NEAR(av[k], bv[k], 1e-9)
          << what << " " << label << " sample " << k;
      EXPECT_EQ(fmt6(av[k]), fmt6(bv[k]))
          << what << " " << label << " sample " << k;
    }
  }
}

/// The engine's pattern-discovery pass, replicated through the public
/// stamping API: record every coordinate under both analysis modes and
/// symmetrize.
std::shared_ptr<const SparsePattern> discover_pattern(Circuit& c) {
  c.finalize();
  const std::size_t n = c.system_size();
  PatternBuilder rec(static_cast<int>(n));
  Vector b(n, 0.0), x(n, 0.0);
  RealStamper r(c, rec, b, x);
  StampContext probe;
  probe.mode = AnalysisMode::kDcOperatingPoint;
  for (const auto& e : c.elements()) e->stamp(r, probe);
  probe.mode = AnalysisMode::kTransient;
  probe.dt = 1.0;
  for (const auto& e : c.elements()) e->stamp(r, probe);
  return rec.build(true);
}

void check_partition_invariants(const SparsePattern& p,
                                const BbdPartition& part) {
  const int n = p.dim();
  ASSERT_EQ(part.membership.size(), static_cast<std::size_t>(n));
  // Every unknown appears exactly once, in the structure its membership
  // claims, with indices ascending within each list.
  std::vector<int> seen(static_cast<std::size_t>(n), 0);
  for (std::size_t bi = 0; bi < part.blocks.size(); ++bi) {
    ASSERT_FALSE(part.blocks[bi].empty()) << "empty block " << bi;
    int prev = -1;
    for (const int v : part.blocks[bi]) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, n);
      EXPECT_GT(v, prev) << "block " << bi << " not ascending";
      prev = v;
      EXPECT_EQ(part.membership[static_cast<std::size_t>(v)],
                static_cast<int>(bi));
      ++seen[static_cast<std::size_t>(v)];
    }
  }
  int prev = -1;
  for (const int v : part.border) {
    EXPECT_GT(v, prev) << "border not ascending";
    prev = v;
    EXPECT_EQ(part.membership[static_cast<std::size_t>(v)], -1);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int v = 0; v < n; ++v)
    EXPECT_EQ(seen[static_cast<std::size_t>(v)], 1) << "unknown " << v;
  // Block independence: no pattern entry couples two different blocks.
  for (int r = 0; r < n; ++r) {
    const int mr = part.membership[static_cast<std::size_t>(r)];
    if (mr < 0) continue;
    for (std::size_t s = p.row_ptr()[static_cast<std::size_t>(r)];
         s < p.row_ptr()[static_cast<std::size_t>(r) + 1]; ++s) {
      const int mc = part.membership[static_cast<std::size_t>(p.col_idx()[s])];
      if (mc < 0) continue;
      EXPECT_EQ(mr, mc) << "cross-block entry (" << r << ","
                        << p.col_idx()[s] << ")";
    }
  }
}

TEST(BbdPartitionTest, InvariantsFuzzedOverChainAndModulatorSizes) {
  std::mt19937 rng(20260807);
  std::uniform_int_distribution<int> chain_stages(2, 24);
  std::uniform_int_distribution<int> mod_sections(1, 6);
  for (int iter = 0; iter < 8; ++iter) {
    // Delay-line chain of random length.
    {
      Circuit c;
      c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
      DelayStageOptions opt;
      build_delay_line_chain(c, chain_stages(rng), opt, "dl_");
      const auto p = discover_pattern(c);
      const auto part = bbd_partition(*p);
      check_partition_invariants(*p, part);
      // Determinism: a second run over the same pattern is identical.
      const auto again = bbd_partition(*p);
      EXPECT_EQ(part.membership, again.membership);
      EXPECT_EQ(part.border, again.border);
      EXPECT_EQ(part.degenerate, again.degenerate);
    }
    // Modulator core of random section count.
    {
      Circuit c;
      c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
      ModulatorCoreOptions opt;
      build_modulator_core(c, mod_sections(rng), opt, "mod_");
      const auto p = discover_pattern(c);
      const auto part = bbd_partition(*p);
      check_partition_invariants(*p, part);
    }
  }
}

TEST(BbdPartitionTest, DecomposesLargeChainsAndBoundsTheBorder) {
  Circuit c;
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  DelayStageOptions opt;
  build_delay_line_chain(c, 32, opt, "dl_");
  const auto p = discover_pattern(c);
  const auto part = bbd_partition(*p);
  check_partition_invariants(*p, part);
  EXPECT_FALSE(part.degenerate);
  EXPECT_GE(part.block_count(), 2u);
  EXPECT_LE(static_cast<double>(part.border_size()),
            0.25 * static_cast<double>(p->dim()));
}

TEST(BbdPartitionTest, TinyCircuitIsDegenerate) {
  Circuit c;
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  MemoryPairOptions opt;
  build_class_ab_memory_pair(c, opt, "m_");
  const auto p = discover_pattern(c);
  EXPECT_TRUE(bbd_partition(*p).degenerate);
}

// ------------------------------------------------------------ SchurLu

/// Hand-built BBD system: two short tridiagonal blocks, each coupled to
/// a single border unknown (the last index) through its last row.
struct CraftedSystem {
  std::shared_ptr<const SparsePattern> pattern;
  BbdPartition part;
  SparseMatrixD a;
};

CraftedSystem crafted_bbd(int block_n) {
  const int n = 2 * block_n + 1;
  const int border = n - 1;
  PatternBuilder b(n);
  for (int blk = 0; blk < 2; ++blk) {
    const int base = blk * block_n;
    for (int i = 1; i < block_n; ++i) b.add(base + i - 1, base + i);
    b.add(base + block_n - 1, border);
  }
  CraftedSystem s;
  s.pattern = b.build(true);
  s.part.membership.assign(static_cast<std::size_t>(n), -1);
  s.part.blocks.resize(2);
  for (int blk = 0; blk < 2; ++blk)
    for (int i = 0; i < block_n; ++i) {
      s.part.blocks[static_cast<std::size_t>(blk)].push_back(blk * block_n +
                                                             i);
      s.part.membership[static_cast<std::size_t>(blk * block_n + i)] = blk;
    }
  s.part.border = {border};
  s.part.degenerate = false;
  s.a = SparseMatrixD(s.pattern);
  return s;
}

void fill_crafted_values(SparseMatrixD& a, double diag, double coupling) {
  a.set_zero();
  const auto& p = a.pattern();
  for (int r = 0; r < p.dim(); ++r)
    for (std::size_t slot = p.row_ptr()[static_cast<std::size_t>(r)];
         slot < p.row_ptr()[static_cast<std::size_t>(r) + 1]; ++slot) {
      const int c = p.col_idx()[slot];
      a.values()[slot] = (r == c) ? diag : coupling;
    }
}

std::vector<double> dense_reference(const SparseMatrixD& a,
                                    const std::vector<double>& b) {
  auto d = a.to_dense();
  std::vector<std::size_t> perm;
  lu_factor_in_place(d, perm);
  std::vector<double> x;
  lu_solve_in_place(d, perm, b, x);
  return x;
}

TEST(SchurLuTest, MatchesDenseOnCraftedBbdSystem) {
  auto s = crafted_bbd(5);
  SchurLuD lu;
  lu.attach(s.pattern, s.part);
  EXPECT_TRUE(lu.attached());
  EXPECT_EQ(lu.block_count(), 2u);
  EXPECT_EQ(lu.border_size(), 1u);

  fill_crafted_values(s.a, 4.0, 1.0);
  lu.factor(s.a);
  std::vector<double> b(static_cast<std::size_t>(s.pattern->dim()));
  for (std::size_t i = 0; i < b.size(); ++i)
    b[i] = 0.25 * static_cast<double>(i) - 1.0;
  std::vector<double> x, ref = dense_reference(s.a, b);
  lu.solve(b, x);
  ASSERT_EQ(x.size(), ref.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(x[i], ref[i], 1e-12) << "unknown " << i;

  // Numeric-only refactor over new values, same pattern.
  fill_crafted_values(s.a, 3.0, -0.5);
  lu.refactor(s.a);
  ref = dense_reference(s.a, b);
  lu.solve(b, x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(x[i], ref[i], 1e-12) << "unknown " << i;
  EXPECT_EQ(lu.block_repivots(), 0u);
}

TEST(SchurLuTest, PerBlockPivotDriftRepivotsLocally) {
  auto s = crafted_bbd(2);  // blocks {0,1} and {2,3}, border {4}
  SchurLuD lu;
  lu.attach(s.pattern, s.part);

  fill_crafted_values(s.a, 4.0, 1.0);
  lu.factor(s.a);

  // Shrink block 0's leading diagonal far below the drift threshold
  // while its off-diagonal stays O(1): the frozen elimination order
  // must detect the drift and the block must re-pivot locally instead
  // of failing the whole system.
  fill_crafted_values(s.a, 4.0, 1.0);
  const int slot00 = s.pattern->find(0, 0);
  ASSERT_GE(slot00, 0);
  s.a.values()[static_cast<std::size_t>(slot00)] = 1e-14;
  lu.refactor(s.a);
  EXPECT_EQ(lu.block_repivots(), 1u);

  std::vector<double> b(static_cast<std::size_t>(s.pattern->dim()), 1.0);
  std::vector<double> x;
  lu.solve(b, x);
  const auto ref = dense_reference(s.a, b);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(x[i], ref[i], 1e-9) << "unknown " << i;
}

// ------------------------------------------------- engine integration

void add_supply(Circuit& c) {
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
}

TransientResult run_table1_chain(int stages) {
  Circuit c;
  add_supply(c);
  DelayStageOptions opt;
  const auto h = build_delay_line_chain(c, stages, opt, "dl_");
  const double T = opt.pair.clock_period;
  c.add<CurrentSource>(
      "Iin", c.ground(), h.in,
      std::make_unique<SineWave>(0.0, 5e-6, 1.0 / (8.0 * T), 0.0));
  TransientOptions topt;
  topt.t_stop = 1.0 * T;
  topt.dt = T / 200.0;
  topt.erc_gate = false;
  Transient tr(c, topt);
  tr.probe_voltage(c.node_name(h.in));
  tr.probe_voltage(c.node_name(h.out));
  return tr.run();
}

TransientResult run_table2_modulator(int sections) {
  Circuit c;
  add_supply(c);
  ModulatorCoreOptions opt;
  const auto h = build_modulator_core(c, sections, opt, "mod_");
  const double T = opt.stage.pair.clock_period;
  c.add<CurrentSource>(
      "Iinp", c.ground(), h.in_p,
      std::make_unique<SineWave>(0.0, 4e-6, 1.0 / (8.0 * T), 0.0));
  c.add<CurrentSource>(
      "Iinm", c.ground(), h.in_m,
      std::make_unique<SineWave>(0.0, -4e-6, 1.0 / (8.0 * T), 0.0));
  TransientOptions topt;
  topt.t_stop = 0.5 * T;
  topt.dt = T / 200.0;
  topt.erc_gate = false;
  Transient tr(c, topt);
  tr.probe_voltage(c.node_name(h.out_p));
  tr.probe_voltage(c.node_name(h.out_m));
  return tr.run();
}

TEST(SchurParity, Table1DelayLineTransient) {
  const auto schur = with_solver("schur", [] { return run_table1_chain(10); });
  const auto sparse =
      with_solver("sparse", [] { return run_table1_chain(10); });
  const auto dense = with_solver("dense", [] { return run_table1_chain(10); });
  expect_signals_match(sparse, schur, "schur-vs-sparse");
  expect_signals_match(dense, schur, "schur-vs-dense");
}

TEST(SchurParity, Table2ModulatorTransient) {
  const auto schur =
      with_solver("schur", [] { return run_table2_modulator(2); });
  const auto sparse =
      with_solver("sparse", [] { return run_table2_modulator(2); });
  const auto dense =
      with_solver("dense", [] { return run_table2_modulator(2); });
  expect_signals_match(sparse, schur, "schur-vs-sparse");
  expect_signals_match(dense, schur, "schur-vs-dense");
}

Vector dc_solution(SolverKind kind, int stages) {
  Circuit c;
  add_supply(c);
  DelayStageOptions opt;
  const auto h = build_delay_line_chain(c, stages, opt, "dl_");
  c.add<CurrentSource>("Iin", c.ground(), h.in, 5e-6);
  MnaEngine engine(c, kind);
  DcOptions dco;
  dco.erc_gate = false;
  const auto result = dc_operating_point(c, engine, dco);
  if (kind == SolverKind::kSchur) {
    EXPECT_EQ(engine.active_solver(), SolverKind::kSchur);
  }
  return result.x;
}

TEST(SchurParity, DcOperatingPointAcrossSolvers) {
  const auto xh = dc_solution(SolverKind::kSchur, 12);
  const auto xs = dc_solution(SolverKind::kSparse, 12);
  const auto xd = dc_solution(SolverKind::kDense, 12);
  ASSERT_EQ(xh.size(), xs.size());
  ASSERT_EQ(xh.size(), xd.size());
  for (std::size_t i = 0; i < xh.size(); ++i) {
    EXPECT_NEAR(xh[i], xs[i], 1e-9) << "unknown " << i;
    EXPECT_NEAR(xh[i], xd[i], 1e-9) << "unknown " << i;
    EXPECT_EQ(fmt6(xh[i]), fmt6(xs[i])) << "unknown " << i;
  }
}

TEST(SchurEngine, PatternCacheInvalidatedOnRevisionBump) {
  Circuit c;
  add_supply(c);
  DelayStageOptions opt;
  const auto h = build_delay_line_chain(c, 12, opt, "dl_");
  c.add<CurrentSource>("Iin", c.ground(), h.in, 5e-6);
  MnaEngine engine(c, SolverKind::kSchur);
  DcOptions dco;
  dco.erc_gate = false;
  dc_operating_point(c, engine, dco);
  EXPECT_EQ(engine.active_solver(), SolverKind::kSchur);
  EXPECT_EQ(engine.stats().pattern_builds, 1u);
  EXPECT_EQ(engine.stats().schur_partitions, 1u);
  EXPECT_GE(engine.schur_blocks(), 2u);

  // Topology edit: the revision bump must rebuild pattern AND partition.
  c.add<Resistor>("Rload", h.out, c.ground(), 1e6);
  dc_operating_point(c, engine, dco);
  EXPECT_EQ(engine.active_solver(), SolverKind::kSchur);
  EXPECT_EQ(engine.stats().pattern_builds, 2u);
  EXPECT_EQ(engine.stats().schur_partitions, 2u);
  EXPECT_EQ(engine.stats().schur_fallbacks, 0u);
}

TEST(SchurEngine, StickyFallbackOnDegeneratePartition) {
  // A single memory pair is far too small to decompose: the engine must
  // keep the explicit schur request alive but solve through the flat
  // sparse path, counting the fallback once per topology.
  Circuit c;
  add_supply(c);
  MemoryPairOptions opt;
  opt.switches_always_on = true;
  const auto h = build_class_ab_memory_pair(c, opt, "m_");
  c.add<CurrentSource>("Iin", c.ground(), h.d, 8e-6);
  MnaEngine engine(c, SolverKind::kSchur);
  DcOptions dco;
  dco.erc_gate = false;
  dc_operating_point(c, engine, dco);
  EXPECT_EQ(engine.active_solver(), SolverKind::kSparse);
  EXPECT_EQ(engine.stats().schur_partitions, 1u);
  EXPECT_EQ(engine.stats().schur_fallbacks, 1u);
  // The fallback is sticky: further solves do not re-partition.
  dc_operating_point(c, engine, dco);
  EXPECT_EQ(engine.stats().schur_partitions, 1u);
  EXPECT_EQ(engine.stats().schur_fallbacks, 1u);
}

TEST(SchurEngine, BitIdenticalAcrossThreadCounts) {
  auto run = [] {
    return with_solver("schur", [] { return run_table1_chain(16); });
  };
  si::runtime::set_thread_count(1);
  const auto t1 = run();
  si::runtime::set_thread_count(2);
  const auto t2 = run();
  si::runtime::set_thread_count(8);
  const auto t8 = run();
  si::runtime::set_thread_count(0);  // restore the default
  ASSERT_EQ(t1.time.size(), t2.time.size());
  ASSERT_EQ(t1.time.size(), t8.time.size());
  for (const auto& [label, v1] : t1.signals) {
    const auto& v2 = t2.signal(label);
    const auto& v8 = t8.signal(label);
    ASSERT_EQ(v1.size(), v2.size());
    ASSERT_EQ(v1.size(), v8.size());
    for (std::size_t k = 0; k < v1.size(); ++k) {
      // Exact equality: the serial fixed-order border reductions make
      // the arithmetic identical at any thread count.
      EXPECT_EQ(v1[k], v2[k]) << label << " sample " << k;
      EXPECT_EQ(v1[k], v8[k]) << label << " sample " << k;
    }
  }
}

TEST(SchurEngine, AcSweepParityWithFlatSparse) {
  auto sweep = [](SolverKind kind) {
    Circuit c;
    add_supply(c);
    DelayStageOptions opt;
    const auto h = build_delay_line_chain(c, 12, opt, "dl_");
    auto& iin = c.add<CurrentSource>("Iin", c.ground(), h.in, 5e-6);
    iin.set_ac_magnitude(1e-6);
    DcOptions dco;
    dco.erc_gate = false;
    dc_operating_point(c, dco);
    AcEngine engine(c, kind);
    std::vector<std::complex<double>> out;
    ComplexVector x;
    for (const double f : {1e3, 1e5, 1e7}) {
      engine.assemble(2.0 * std::numbers::pi * f);
      engine.solve(engine.rhs(), x);
      out.push_back(x[static_cast<std::size_t>(h.out) - 1]);
    }
    if (kind == SolverKind::kSchur) {
      EXPECT_EQ(engine.active_solver(), SolverKind::kSchur);
    }
    return out;
  };
  const auto hs = sweep(SolverKind::kSchur);
  const auto fs = sweep(SolverKind::kSparse);
  ASSERT_EQ(hs.size(), fs.size());
  for (std::size_t i = 0; i < hs.size(); ++i)
    EXPECT_LE(std::abs(hs[i] - fs[i]), 1e-9 * (1.0 + std::abs(fs[i])))
        << "frequency point " << i;
}

}  // namespace
