// Tests for the simulation service: the JSON codec, the request
// protocol (validation, cache keys), and the JobServer lifecycle —
// admission control, deadlines, cancellation, draining shutdown, the
// shared result memo, and the one-reply-per-submit guarantee under
// deliberately hostile request streams.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/job_server.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"

namespace {

using namespace si::serve;

// ---------------------------------------------------------------- json

TEST(Json, RoundTripsEscapesAndUnicode) {
  const std::string text =
      R"({"s":"a\"b\\c\n\t","e":"caf\u00e9","emoji":"\ud83d\ude00"})";
  const Json j = Json::parse(text);
  EXPECT_EQ(j.find("s")->as_string(), "a\"b\\c\n\t");
  EXPECT_EQ(j.find("e")->as_string(), "caf\xc3\xa9");
  EXPECT_EQ(j.find("emoji")->as_string(), "\xf0\x9f\x98\x80");
  // dump -> parse is the identity on the decoded values.
  const Json again = Json::parse(j.dump());
  EXPECT_EQ(again.find("s")->as_string(), j.find("s")->as_string());
  EXPECT_EQ(again.find("emoji")->as_string(), j.find("emoji")->as_string());
}

TEST(Json, NumbersDumpAtFullPrecision) {
  EXPECT_EQ(Json(5.0).dump(), "5");
  EXPECT_EQ(Json(-42.0).dump(), "-42");
  const double v = 0.1234567890123456789;
  EXPECT_DOUBLE_EQ(Json::parse(Json(v).dump()).as_number(), v);
}

TEST(Json, ParseErrorsCarryByteOffsets) {
  try {
    Json::parse("{\"a\":}");
    FAIL() << "must throw";
  } catch (const JsonError& e) {
    EXPECT_GE(e.offset(), 5u);
  }
  EXPECT_THROW(Json::parse("1 2"), JsonError);        // trailing bytes
  EXPECT_THROW(Json::parse("{\"a\":1"), JsonError);   // truncated
  EXPECT_THROW(Json::parse("\"\\ud83d\""), JsonError);  // lone surrogate
}

TEST(Json, DepthLimitStopsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(Json::parse(deep), JsonError);
  // Within the limit parses fine.
  std::string ok(10, '[');
  ok += std::string(10, ']');
  EXPECT_NO_THROW(Json::parse(ok));
}

// ------------------------------------------------------------ protocol

Json base_request(const std::string& deck) {
  Json r = Json::object();
  r.set("id", "t");
  r.set("deck", deck);
  return r;
}

TEST(Protocol, RejectsMissingDeckAndUnknownKeys) {
  Json no_deck = Json::object();
  no_deck.set("id", "x");
  try {
    parse_request(no_deck);
    FAIL() << "deck is required";
  } catch (const JobError& e) {
    EXPECT_EQ(e.kind(), "bad_request");
  }

  Json typo = base_request("Vdd a 0 DC 1\n");
  typo.set("tymeout_ms", 5.0);  // typo must not silently become a default
  try {
    parse_request(typo);
    FAIL() << "unknown key must be rejected";
  } catch (const JobError& e) {
    EXPECT_EQ(e.kind(), "bad_request");
    EXPECT_NE(std::string(e.what()).find("tymeout_ms"), std::string::npos);
  }

  Json bad_analysis = base_request("Vdd a 0 DC 1\n");
  bad_analysis.set("analysis", "transient");
  EXPECT_THROW(parse_request(bad_analysis), JobError);

  Json mc = base_request("Vdd a 0 DC 1\n");
  mc.set("analysis", "mc");  // mc_measure is required for mc
  EXPECT_THROW(parse_request(mc), JobError);
}

TEST(Protocol, CacheKeyCoversPhysicsNotPlumbing) {
  const std::string tran_deck = "Vdd a 0 DC 1\nR1 a 0 1k\n.tran 1n 10n\n";
  Json a = base_request(tran_deck);
  Json b = base_request(tran_deck);
  b.set("id", "other");
  b.set("timeout_ms", 250.0);
  b.set("want_telemetry", true);
  b.set("no_cache", true);
  // id / deadline / telemetry / cache-bypass do not change the physics.
  EXPECT_EQ(request_cache_key(parse_request(a)),
            request_cache_key(parse_request(b)));

  // "auto" on a .tran deck resolves to the same key as explicit "tran".
  Json c = base_request(tran_deck);
  c.set("analysis", "tran");
  EXPECT_EQ(request_cache_key(parse_request(a)),
            request_cache_key(parse_request(c)));

  // Deck text and Newton limits are physics.
  Json d = base_request(tran_deck + "* tweak\n");
  EXPECT_NE(request_cache_key(parse_request(a)),
            request_cache_key(parse_request(d)));
  Json e = base_request(tran_deck);
  e.set("max_newton_iterations", 7);
  EXPECT_NE(request_cache_key(parse_request(a)),
            request_cache_key(parse_request(e)));
}

// ------------------------------------------------------------- serving

// The paper's clean class-AB memory cell, ERC-clean and cheap to solve.
const char* kCellCards = R"(.model nmem NMOS (KP=100u VTO=0.8 LAMBDA=0.02 CGS=0.15p)
.model pmem PMOS (KP=40u  VTO=0.8 LAMBDA=0.02 CGS=0.15p)
Vdd vdd 0 DC 3.3
MN  d gn 0   nmem W=10u L=2u
MP  d gp vdd pmem W=25u L=2u
SN  gn d PULSE(0 3.3 0 10n 10n 480n 1u) 1k 1g
SP  gp d PULSE(0 3.3 0 10n 10n 480n 1u) 1k 1g
Iin 0 d DC 8u
)";

std::string op_deck(int variant) {
  std::ostringstream ss;
  ss << kCellCards << "Ix 0 d DC " << (1 + variant % 7) << "u\n.op\n";
  return ss.str();
}

// A transient long enough to be mid-flight when a deadline or a cancel
// lands (tens of thousands of accepted steps on this cell).
std::string slow_tran_deck() {
  return std::string(kCellCards) + ".tran 5n 500u\n.probe v(d)\n";
}

std::string request_line(const std::string& id, const std::string& deck) {
  Json r = Json::object();
  r.set("id", id);
  r.set("deck", deck);
  return r.dump();
}

Json reply_of(std::future<std::string>& f) { return Json::parse(f.get()); }

std::string status_of(const Json& reply) {
  return reply.find("status") ? reply.find("status")->as_string() : "";
}

std::string error_kind(const Json& reply) {
  const Json* err = reply.find("error");
  return err && err->find("kind") ? err->find("kind")->as_string() : "";
}

// Polls until at least `n` jobs are running (deadline-bounded so a
// regression fails the test instead of hanging it).
bool wait_for_running(JobServer& s, std::size_t n) {
  for (int k = 0; k < 2000; ++k) {
    if (s.stats().running >= n) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(JobServer, HealthyOpJobRoundTrips) {
  JobServer server;
  auto f = server.submit(request_line("op-1", op_deck(0)));
  const Json reply = reply_of(f);
  EXPECT_EQ(reply.find("id")->as_string(), "op-1");
  EXPECT_EQ(status_of(reply), "ok");
  EXPECT_FALSE(reply.find("cached")->as_bool());
  ASSERT_NE(reply.find("result"), nullptr);
  const Json* volts = reply.find("result")->find("node_voltages");
  ASSERT_NE(volts, nullptr);
  EXPECT_NE(volts->find("d"), nullptr);
  EXPECT_GE(reply.find("elapsed_ms")->as_number(), 0.0);
}

TEST(JobServer, EveryFailureModeGetsAStructuredReplyAndWorkersSurvive) {
  JobServer::Options opt;
  opt.workers = 2;
  JobServer server(opt);

  auto bad_json = server.submit("{not json");
  auto bad_req = server.submit("{\"deck\":\"Vdd a 0 DC 1\\n\",\"bogus\":1}");
  auto bad_deck = server.submit(request_line("p", "Mbroken 1 2\n.op\n"));
  // No ground node anywhere: the ERC gate must refuse to simulate.
  auto erc_fail = server.submit(request_line("e", "R1 a b 1k\n.op\n"));
  // Two grounded sources forcing different voltages on one node: parses
  // and passes ERC, but the MNA system is singular at solve time.
  auto singular = server.submit(
      request_line("s", "V1 a 0 DC 1\nV2 a 0 DC 2\nR1 a 0 1k\n.op\n"));
  // Healthy jobs interleaved with the poison must still complete.
  auto good1 = server.submit(request_line("g1", op_deck(1)));
  auto good2 = server.submit(request_line("g2", op_deck(2)));

  const Json r_json = reply_of(bad_json);
  EXPECT_EQ(status_of(r_json), "error");
  EXPECT_EQ(error_kind(r_json), "bad_json");

  const Json r_req = reply_of(bad_req);
  EXPECT_EQ(status_of(r_req), "error");
  EXPECT_EQ(error_kind(r_req), "bad_request");

  const Json r_deck = reply_of(bad_deck);
  EXPECT_EQ(r_deck.find("id")->as_string(), "p");
  EXPECT_EQ(status_of(r_deck), "error");
  EXPECT_EQ(error_kind(r_deck), "parse_error");

  const Json r_erc = reply_of(erc_fail);
  EXPECT_EQ(status_of(r_erc), "error");
  EXPECT_EQ(error_kind(r_erc), "erc_failed");
  // The ERC diagnostics ride along as structured JSON, not prose.
  const Json* err = r_erc.find("error");
  ASSERT_NE(err, nullptr);
  ASSERT_NE(err->find("diagnostics"), nullptr);
  EXPECT_NE(err->dump().find("no-ground"), std::string::npos);

  const Json r_sing = reply_of(singular);
  EXPECT_EQ(r_sing.find("id")->as_string(), "s");
  EXPECT_EQ(status_of(r_sing), "error");

  EXPECT_EQ(status_of(reply_of(good1)), "ok");
  EXPECT_EQ(status_of(reply_of(good2)), "ok");

  const auto st = server.stats();
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.failed, 5u);  // bad_json/bad_req/bad_deck/erc/singular
}

TEST(JobServer, AdmissionControlRejectsBeyondQueueCapacity) {
  JobServer::Options opt;
  opt.workers = 1;
  opt.queue_capacity = 1;
  JobServer server(opt);

  auto running = server.submit(request_line("busy", slow_tran_deck()));
  ASSERT_TRUE(wait_for_running(server, 1));
  auto queued = server.submit(request_line("queued", op_deck(0)));
  auto bounced = server.submit(request_line("bounced", op_deck(1)));

  const Json r = reply_of(bounced);
  EXPECT_EQ(r.find("id")->as_string(), "bounced");
  EXPECT_EQ(status_of(r), "rejected");
  EXPECT_GE(server.stats().rejected, 1u);

  // Free the worker; the queued job must still complete normally.
  EXPECT_TRUE(server.cancel("busy"));
  EXPECT_EQ(status_of(reply_of(running)), "cancelled");
  EXPECT_EQ(status_of(reply_of(queued)), "ok");
}

TEST(JobServer, DeadlineExpiresMidTransient) {
  JobServer server;
  Json req = Json::object();
  req.set("id", "late");
  req.set("deck", slow_tran_deck());
  req.set("timeout_ms", 50.0);
  const auto t0 = std::chrono::steady_clock::now();
  auto f = server.submit(req.dump());
  const Json reply = reply_of(f);
  const double waited_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  EXPECT_EQ(status_of(reply), "timeout");
  EXPECT_EQ(error_kind(reply), "timeout");
  // The Newton checkpoint fires every iteration, so the unwind is far
  // faster than finishing the 100k-step transient would be.
  EXPECT_LT(waited_ms, 10000.0);
  EXPECT_EQ(server.stats().timed_out, 1u);
}

TEST(JobServer, CancelUnwindsARunningJob) {
  JobServer server;
  auto f = server.submit(request_line("victim", slow_tran_deck()));
  ASSERT_TRUE(wait_for_running(server, 1));
  EXPECT_TRUE(server.cancel("victim"));
  const Json reply = reply_of(f);
  EXPECT_EQ(status_of(reply), "cancelled");
  EXPECT_EQ(server.stats().cancelled, 1u);
  EXPECT_FALSE(server.cancel("victim"));  // nothing left under that id
}

TEST(JobServer, GracefulShutdownDrainsTheQueue) {
  JobServer::Options opt;
  opt.workers = 2;
  JobServer server(opt);
  std::vector<std::future<std::string>> futures;
  for (int k = 0; k < 8; ++k)
    futures.push_back(
        server.submit(request_line("d-" + std::to_string(k), op_deck(k))));
  server.shutdown(/*drain=*/true);
  for (auto& f : futures) EXPECT_EQ(status_of(reply_of(f)), "ok");
  EXPECT_EQ(server.stats().completed, 8u);

  // Post-shutdown submits must still resolve, as rejections.
  auto late = server.submit(request_line("late", op_deck(0)));
  EXPECT_EQ(status_of(reply_of(late)), "rejected");
}

TEST(JobServer, AbortShutdownCancelsQueuedAndRunningJobs) {
  JobServer::Options opt;
  opt.workers = 1;
  opt.queue_capacity = 16;
  JobServer server(opt);
  auto running = server.submit(request_line("run", slow_tran_deck()));
  ASSERT_TRUE(wait_for_running(server, 1));
  auto queued = server.submit(request_line("wait", op_deck(0)));
  server.shutdown(/*drain=*/false);
  EXPECT_EQ(status_of(reply_of(running)), "cancelled");
  EXPECT_EQ(status_of(reply_of(queued)), "cancelled");
}

TEST(JobServer, CacheHitsSkipResimulationAndHonourNoCache) {
  JobServer server;
  auto first = server.submit(request_line("a", op_deck(3)));
  const Json r1 = reply_of(first);
  ASSERT_EQ(status_of(r1), "ok");
  EXPECT_FALSE(r1.find("cached")->as_bool());

  // Same physics under a different id: a hit, identical payload.
  auto second = server.submit(request_line("b", op_deck(3)));
  const Json r2 = reply_of(second);
  EXPECT_EQ(status_of(r2), "ok");
  EXPECT_TRUE(r2.find("cached")->as_bool());
  EXPECT_EQ(r1.find("result")->dump(), r2.find("result")->dump());
  EXPECT_EQ(server.stats().cache_hits, 1u);

  // Explicit "op" resolves to the same key as the implicit default.
  Json explicit_op = Json::object();
  explicit_op.set("id", "c");
  explicit_op.set("deck", op_deck(3));
  explicit_op.set("analysis", "op");
  auto third = server.submit(explicit_op.dump());
  EXPECT_TRUE(reply_of(third).find("cached")->as_bool());

  // no_cache forces a fresh solve even when the memo is warm.
  Json bypass = Json::object();
  bypass.set("id", "d");
  bypass.set("deck", op_deck(3));
  bypass.set("no_cache", true);
  auto fourth = server.submit(bypass.dump());
  const Json r4 = reply_of(fourth);
  EXPECT_EQ(status_of(r4), "ok");
  EXPECT_FALSE(r4.find("cached")->as_bool());
  EXPECT_EQ(server.stats().cache_hits, 2u);
}

TEST(JobServer, SixtyFourConcurrentMixedJobsNoLostNoDuplicated) {
  JobServer::Options opt;
  opt.workers = 8;
  opt.queue_capacity = 80;
  JobServer server(opt);

  const int kJobs = 64;
  std::vector<std::future<std::string>> futures;
  for (int k = 0; k < kJobs; ++k) {
    const std::string id = "mix-" + std::to_string(k);
    Json req = Json::object();
    req.set("id", id);
    switch (k % 3) {
      case 0:
        req.set("deck", op_deck(k));
        break;
      case 1:
        req.set("deck", std::string(kCellCards) + "Ix 0 d DC " +
                            std::to_string(1 + k % 7) +
                            "u\n.tran 5n 300n\n.probe v(d)\n");
        break;
      default:
        req.set("deck", op_deck(k));
        req.set("analysis", "mc");
        req.set("mc_trials", 8);
        req.set("mc_seed", 1 + k);
        req.set("mc_measure", "v(d)");
    }
    futures.push_back(server.submit(req.dump()));
  }

  std::vector<int> seen(kJobs, 0);
  for (int k = 0; k < kJobs; ++k) {
    const Json reply = reply_of(futures[static_cast<std::size_t>(k)]);
    EXPECT_EQ(status_of(reply), "ok") << reply.dump();
    const std::string id = reply.find("id")->as_string();
    ASSERT_EQ(id.rfind("mix-", 0), 0u);
    ++seen[std::stoi(id.substr(4))];
  }
  for (int k = 0; k < kJobs; ++k)
    EXPECT_EQ(seen[static_cast<std::size_t>(k)], 1) << "id mix-" << k;
  EXPECT_EQ(server.stats().completed, static_cast<std::uint64_t>(kJobs));
}

TEST(JobServer, StatsJsonExposesCountersAndCache) {
  JobServer server;
  auto f = server.submit(request_line("x", op_deck(5)));
  reply_of(f);
  const Json stats = Json::parse(server.stats_json());
  for (const char* key : {"accepted", "rejected", "completed", "failed",
                          "cancelled", "timed_out", "cache_hits",
                          "queue_depth", "running", "workers", "cache"})
    EXPECT_NE(stats.find(key), nullptr) << key;
  EXPECT_EQ(stats.find("accepted")->as_number(), 1.0);
  EXPECT_EQ(stats.find("completed")->as_number(), 1.0);
  const Json* cache = stats.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_NE(cache->find("hits"), nullptr);
  EXPECT_NE(cache->find("capacity"), nullptr);
}

}  // namespace
