#include <gtest/gtest.h>

#include <cmath>

#include "dsp/signal.hpp"
#include "si/filter.hpp"

namespace {

using si::cells::Diff;
using si::cells::MemoryCellParams;
using si::cells::SiBiquad;
using si::cells::SiBiquadConfig;

SiBiquadConfig ideal_config(double f0, double q) {
  SiBiquadConfig c;
  c.f0 = f0;
  c.q = q;
  c.cell = MemoryCellParams::ideal();
  c.cell_mismatch_sigma = 0.0;
  c.coeff_mismatch_sigma = 0.0;
  c.cmff.mirror_mismatch_sigma = 0.0;
  return c;
}

TEST(SiBiquad, UnityDcGain) {
  SiBiquad f(ideal_config(100e3, 2.0));
  Diff out;
  for (int n = 0; n < 3000; ++n)
    out = f.step(Diff::from_dm_cm(1e-6, 0.0));
  EXPECT_NEAR(out.dm(), 1e-6, 1e-9);
}

TEST(SiBiquad, MatchesIdealResponseAcrossFrequency) {
  const SiBiquadConfig cfg = ideal_config(100e3, 2.0);
  const std::vector<double> freqs{20e3, 60e3, 100e3, 140e3, 300e3, 1e6};
  auto dut = [&](const std::vector<double>& x) {
    SiBiquad f(cfg);
    return f.run_dm(x);
  };
  const auto mags = si::cells::measure_magnitude_response(
      dut, freqs, cfg.fclk, 1e-6, 1 << 14);
  for (std::size_t k = 0; k < freqs.size(); ++k) {
    const double ideal = SiBiquad::ideal_magnitude(cfg, freqs[k]);
    EXPECT_NEAR(mags[k], ideal, 0.05 * ideal + 1e-3) << "f=" << freqs[k];
  }
}

TEST(SiBiquad, ResonantPeakNearQ) {
  const SiBiquadConfig cfg = ideal_config(100e3, 5.0);
  auto dut = [&](const std::vector<double>& x) {
    SiBiquad f(cfg);
    return f.run_dm(x);
  };
  const auto mags = si::cells::measure_magnitude_response(
      dut, {100e3}, cfg.fclk, 0.2e-6, 1 << 15);
  EXPECT_NEAR(mags[0], 5.0, 0.5);
}

TEST(SiBiquad, LowpassRollsOffAtHighFrequency) {
  const SiBiquadConfig cfg = ideal_config(50e3, 1.0);
  auto dut = [&](const std::vector<double>& x) {
    SiBiquad f(cfg);
    return f.run_dm(x);
  };
  const auto mags = si::cells::measure_magnitude_response(
      dut, {10e3, 500e3}, cfg.fclk, 1e-6, 1 << 14);
  EXPECT_NEAR(mags[0], 1.0, 0.05);
  EXPECT_LT(mags[1], 0.02);  // ~ -40 dB two decades up
}

TEST(SiBiquad, TransmissionErrorErodesQ) {
  // The cell leak adds parasitic damping: the resonant peak drops.  The
  // GGA boost (large gga_gain) restores it — the paper's Fig. 1 claim
  // applied to filters.
  SiBiquadConfig leaky = ideal_config(100e3, 5.0);
  leaky.cell.base_transmission_error = 5e-3;
  leaky.cell.gga_gain = 1.0;  // no GGA
  SiBiquadConfig boosted = leaky;
  boosted.cell.gga_gain = 50.0;  // the paper's cell
  auto peak_of = [&](const SiBiquadConfig& cfg) {
    auto dut = [&](const std::vector<double>& x) {
      SiBiquad f(cfg);
      return f.run_dm(x);
    };
    return si::cells::measure_magnitude_response(dut, {100e3}, cfg.fclk,
                                                 0.2e-6, 1 << 15)[0];
  };
  const double q_leaky = peak_of(leaky);
  const double q_boosted = peak_of(boosted);
  EXPECT_LT(q_leaky, 4.0);            // visibly degraded
  EXPECT_NEAR(q_boosted, 5.0, 0.5);   // restored by the GGA
}

TEST(SiBiquad, ResetClearsState) {
  SiBiquad f(ideal_config(100e3, 2.0));
  for (int n = 0; n < 100; ++n) f.step(Diff::from_dm_cm(1e-6, 0.0));
  f.reset();
  EXPECT_DOUBLE_EQ(f.step(Diff{}).dm(), 0.0);
}

TEST(SiBiquad, RejectsBadConfig) {
  SiBiquadConfig c = ideal_config(100e3, 2.0);
  c.f0 = 0.0;
  EXPECT_THROW(SiBiquad{c}, std::invalid_argument);
  c = ideal_config(100e3, 2.0);
  c.f0 = c.fclk;  // way beyond Nyquist/4
  EXPECT_THROW(SiBiquad{c}, std::invalid_argument);
}

TEST(SiBiquad, CoefficientHelpers) {
  SiBiquadConfig c = ideal_config(100e3, 4.0);
  const double g = 2.0 * 3.14159265 * 100e3 / 5e6;
  EXPECT_NEAR(c.loop_gain(), g, 1e-9);
  // Damping carries the excess-delay predistortion term g^2.
  EXPECT_NEAR(c.damping(), g / 4.0 + g * g, 1e-9);
}


TEST(SiFilterCascade, ButterworthSectionsQValues) {
  const auto s4 = si::cells::butterworth_sections(4, 1e5);
  ASSERT_EQ(s4.size(), 2u);
  // Order-4 Butterworth: Q = 0.5412, 1.3066.
  EXPECT_NEAR(s4[0].q, 0.5412, 1e-3);
  EXPECT_NEAR(s4[1].q, 1.3066, 1e-3);
  EXPECT_DOUBLE_EQ(s4[0].f0, 1e5);
  EXPECT_THROW(si::cells::butterworth_sections(3, 1e5),
               std::invalid_argument);
  EXPECT_THROW(si::cells::butterworth_sections(0, 1e5),
               std::invalid_argument);
}

TEST(SiFilterCascade, SixthOrderRollOff) {
  const double f0 = 100e3, fclk = 5e6;
  si::cells::SiFilterCascade f(6, f0, fclk,
                               si::cells::MemoryCellParams::ideal(), 1);
  EXPECT_EQ(f.order(), 6);
  auto dut = [&](const std::vector<double>& x) {
    si::cells::SiFilterCascade fresh(
        6, f0, fclk, si::cells::MemoryCellParams::ideal(), 1);
    return fresh.run_dm(x);
  };
  const std::vector<double> freqs{20e3, 100e3, 200e3, 400e3};
  const auto mags = si::cells::measure_magnitude_response(dut, freqs, fclk,
                                                          1e-6, 1 << 14);
  // Passband ~1, -3 dB at the corner, then ~36 dB/octave.
  EXPECT_NEAR(mags[0], 1.0, 0.05);
  EXPECT_NEAR(si::dsp::db_from_amplitude_ratio(mags[1]), -3.0, 1.0);
  const double octave_drop = si::dsp::db_from_amplitude_ratio(mags[2]) -
                             si::dsp::db_from_amplitude_ratio(mags[3]);
  EXPECT_NEAR(octave_drop, 36.0, 5.0);
  // Matches the ideal cascade model.
  for (std::size_t k = 0; k < freqs.size(); ++k) {
    const double ideal = f.ideal_magnitude(freqs[k]);
    EXPECT_NEAR(mags[k], ideal, 0.1 * ideal + 1e-3) << freqs[k];
  }
}

TEST(SiFilterCascade, ResetClearsAllStages) {
  si::cells::SiFilterCascade f(4, 50e3, 5e6,
                               si::cells::MemoryCellParams::ideal(), 2);
  for (int n = 0; n < 50; ++n)
    f.step(si::cells::Diff::from_dm_cm(1e-6, 0.0));
  f.reset();
  EXPECT_DOUBLE_EQ(f.step(si::cells::Diff{}).dm(), 0.0);
}

}  // namespace
