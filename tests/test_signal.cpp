#include <gtest/gtest.h>

#include <cmath>

#include "dsp/signal.hpp"

namespace {

TEST(Signal, DbConversionsRoundTrip) {
  EXPECT_NEAR(si::dsp::db_from_power_ratio(100.0), 20.0, 1e-12);
  EXPECT_NEAR(si::dsp::db_from_amplitude_ratio(10.0), 20.0, 1e-12);
  EXPECT_NEAR(si::dsp::power_ratio_from_db(30.0), 1000.0, 1e-9);
  EXPECT_NEAR(si::dsp::amplitude_ratio_from_db(-6.0), 0.501187, 1e-5);
  for (double db : {-80.0, -6.0, 0.0, 12.5}) {
    EXPECT_NEAR(
        si::dsp::db_from_amplitude_ratio(si::dsp::amplitude_ratio_from_db(db)),
        db, 1e-9);
  }
}

TEST(Signal, RmsOfSine) {
  const auto x = si::dsp::sine(1 << 14, 2.0, 0.01, 1.0);
  EXPECT_NEAR(si::dsp::rms(x), 2.0 / std::sqrt(2.0), 1e-2);
  EXPECT_NEAR(si::dsp::peak(x), 2.0, 1e-3);
  EXPECT_NEAR(si::dsp::mean(x), 0.0, 1e-2);
}

TEST(Signal, CoherentFrequencyIsOddBin) {
  const double fs = 2.45e6;
  const std::size_t n = 65536;
  const double f = si::dsp::coherent_frequency(2e3, fs, n);
  const double bin = si::dsp::frequency_to_bin(f, fs, n);
  EXPECT_NEAR(bin, std::round(bin), 1e-9);
  EXPECT_EQ(static_cast<long long>(std::llround(bin)) % 2, 1);
  EXPECT_NEAR(f, 2e3, 2.0 * fs / static_cast<double>(n));
}

TEST(Signal, CoherentFrequencyNeverBelowFirstBin) {
  const double f = si::dsp::coherent_frequency(0.0, 1000.0, 1024);
  EXPECT_NEAR(f, 1000.0 / 1024.0, 1e-12);
}

TEST(Signal, XoshiroDeterministic) {
  si::dsp::Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  si::dsp::Xoshiro256 c(124);
  bool differs = false;
  si::dsp::Xoshiro256 a2(123);
  for (int i = 0; i < 10; ++i)
    if (a2.next_u64() != c.next_u64()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Signal, UniformInRange) {
  si::dsp::Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Signal, NormalMomentsApproximatelyCorrect) {
  si::dsp::Xoshiro256 rng(11);
  const int n = 200000;
  double s1 = 0.0, s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.0, 2.0);
    s1 += v;
    s2 += v * v;
  }
  const double mean = s1 / n;
  const double var = s2 / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Signal, WhiteNoiseRms) {
  const auto x = si::dsp::white_noise(100000, 0.5, 3);
  EXPECT_NEAR(si::dsp::rms(x), 0.5, 0.01);
}

TEST(Signal, MultitoneSuperposition) {
  const double fs = 1000.0;
  const auto a = si::dsp::sine(64, 1.0, 100.0, fs);
  const auto b = si::dsp::sine(64, 0.5, 200.0, fs, 0.7);
  const auto m =
      si::dsp::multitone(64, {{1.0, 100.0, 0.0}, {0.5, 200.0, 0.7}}, fs);
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_NEAR(m[i], a[i] + b[i], 1e-12);
}


TEST(Signal, JitterSnrFollowsApertureFormula) {
  // SNR = -20 log10(2 pi f sigma_j) for a jittered sine.
  const std::size_t n = 1 << 15;
  const double fs = 10e6;
  const double f = si::dsp::coherent_frequency(1e6, fs, n);
  const double sj = 50e-12;  // 50 ps rms
  const auto clean = si::dsp::sine(n, 1.0, f, fs);
  const auto dirty = si::dsp::sine_with_jitter(n, 1.0, f, fs, sj, 4);
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    err += (dirty[i] - clean[i]) * (dirty[i] - clean[i]);
  const double snr = 10.0 * std::log10((0.5 * n) / err);
  const double expected = -20.0 * std::log10(2.0 * 3.14159265 * f * sj);
  EXPECT_NEAR(snr, expected, 1.0);
}

TEST(Signal, ZeroJitterIsExactSine) {
  const auto a = si::dsp::sine(256, 1.0, 1e3, 1e6);
  const auto b = si::dsp::sine_with_jitter(256, 1.0, 1e3, 1e6, 0.0, 1);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

}  // namespace
