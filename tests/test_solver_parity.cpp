// Tier-1 solver-parity assertions: the Table 1 delay-line and Table 2
// modulator-core transients must produce the same waveforms under
// SI_SOLVER=dense and SI_SOLVER=sparse — within 1e-9 on the raw
// doubles, and byte-identical once formatted at the %.6g precision the
// bench tables emit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "si/netlists.hpp"
#include "spice/mna.hpp"
#include "spice/transient.hpp"

namespace {

using namespace si::spice;
using namespace si::cells::netlists;

/// Runs `run` with SI_SOLVER forced to `kind`, restoring the prior
/// value afterwards.
template <typename F>
auto with_solver(const char* kind, F run) {
  std::string saved;
  bool had = false;
  if (const char* v = std::getenv("SI_SOLVER")) {
    saved = v;
    had = true;
  }
  setenv("SI_SOLVER", kind, 1);
  auto result = run();
  if (had)
    setenv("SI_SOLVER", saved.c_str(), 1);
  else
    unsetenv("SI_SOLVER");
  return result;
}

std::string fmt6(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void expect_signals_match(const TransientResult& dense,
                          const TransientResult& sparse) {
  ASSERT_EQ(dense.time.size(), sparse.time.size());
  ASSERT_EQ(dense.signals.size(), sparse.signals.size());
  for (const auto& [label, dv] : dense.signals) {
    const auto& sv = sparse.signal(label);
    ASSERT_EQ(dv.size(), sv.size()) << label;
    for (std::size_t k = 0; k < dv.size(); ++k) {
      EXPECT_NEAR(dv[k], sv[k], 1e-9) << label << " sample " << k;
      EXPECT_EQ(fmt6(dv[k]), fmt6(sv[k])) << label << " sample " << k;
    }
  }
}

TransientResult run_table1_chain() {
  Circuit c;
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  DelayStageOptions opt;
  const auto h = build_delay_line_chain(c, 3, opt, "dl_");
  const double T = opt.pair.clock_period;
  c.add<CurrentSource>(
      "Iin", c.ground(), h.in,
      std::make_unique<SineWave>(0.0, 5e-6, 1.0 / (8.0 * T), 0.0));
  TransientOptions topt;
  topt.t_stop = 2.0 * T;
  topt.dt = T / 200.0;
  topt.erc_gate = false;
  Transient tr(c, topt);
  tr.probe_voltage(c.node_name(h.in));
  tr.probe_voltage(c.node_name(h.out));
  return tr.run();
}

TransientResult run_table2_modulator() {
  Circuit c;
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  ModulatorCoreOptions opt;
  const auto h = build_modulator_core(c, 1, opt, "mod_");
  const double T = opt.stage.pair.clock_period;
  c.add<CurrentSource>(
      "Iinp", c.ground(), h.in_p,
      std::make_unique<SineWave>(0.0, 4e-6, 1.0 / (8.0 * T), 0.0));
  c.add<CurrentSource>(
      "Iinm", c.ground(), h.in_m,
      std::make_unique<SineWave>(0.0, -4e-6, 1.0 / (8.0 * T), 0.0));
  TransientOptions topt;
  topt.t_stop = T;
  topt.dt = T / 200.0;
  topt.erc_gate = false;
  Transient tr(c, topt);
  tr.probe_voltage(c.node_name(h.out_p));
  tr.probe_voltage(c.node_name(h.out_m));
  return tr.run();
}

TEST(SolverParity, Table1DelayLineTransient) {
  const auto dense = with_solver("dense", run_table1_chain);
  const auto sparse = with_solver("sparse", run_table1_chain);
  expect_signals_match(dense, sparse);
}

TEST(SolverParity, Table2ModulatorTransient) {
  const auto dense = with_solver("dense", run_table2_modulator);
  const auto sparse = with_solver("sparse", run_table2_modulator);
  expect_signals_match(dense, sparse);
}

TEST(SolverParity, AdaptiveTransientAgreesAcrossSolvers) {
  auto run = [] {
    Circuit c;
    c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
    MemoryPairOptions opt;
    const auto h = build_class_ab_memory_pair(c, opt, "m_");
    c.add<CurrentSource>("Iin", c.ground(), h.d, 8e-6);
    TransientOptions topt;
    topt.t_stop = 0.75 * opt.clock_period;
    topt.dt = opt.clock_period / 500.0;
    topt.adaptive = true;
    Transient tr(c, topt);
    tr.probe_voltage("m_gn");
    return tr.run();
  };
  const auto dense = with_solver("dense", run);
  const auto sparse = with_solver("sparse", run);
  expect_signals_match(dense, sparse);
}

}  // namespace
