// Sparse pattern / sparse LU unit tests: randomized dense-vs-sparse
// equivalence on MNA-shaped and SPD matrices (real and complex),
// refactor reuse, pivot drift, singular-matrix parity with the dense
// path, and the slot-memo replay used by pattern-cached stamping.
#include <gtest/gtest.h>

#include <complex>
#include <random>

#include "linalg/lu.hpp"
#include "linalg/sparse.hpp"

using namespace si::linalg;
using cplx = std::complex<double>;

namespace {

// Random sparse pattern shaped like an MNA system: a diagonally-coupled
// node block plus a few "branch rows" with zero diagonal that only
// couple off-diagonally (the voltage-source structure that forces real
// pivoting).
struct RandomSystem {
  std::shared_ptr<const SparsePattern> pattern;
  std::vector<std::pair<int, int>> coords;  // includes the transpose pairs
};

RandomSystem random_mna_pattern(int n_nodes, int n_branches,
                                std::mt19937& rng) {
  const int n = n_nodes + n_branches;
  PatternBuilder b(n);
  std::vector<std::pair<int, int>> coords;
  std::uniform_int_distribution<int> node(0, n_nodes - 1);
  // Two-terminal conductances between random node pairs.
  for (int k = 0; k < 3 * n_nodes; ++k) {
    const int i = node(rng), j = node(rng);
    b.add(i, i);
    b.add(j, j);
    b.add(i, j);
    b.add(j, i);
    coords.push_back({i, i});
    coords.push_back({j, j});
    coords.push_back({i, j});
    coords.push_back({j, i});
  }
  // Branch rows: +-1 couplings, structurally zero diagonal.
  for (int k = 0; k < n_branches; ++k) {
    const int row = n_nodes + k;
    const int i = node(rng);
    b.add(row, i);
    b.add(i, row);
    coords.push_back({row, i});
    coords.push_back({i, row});
  }
  RandomSystem s;
  s.pattern = b.build();
  s.coords = coords;
  return s;
}

template <typename T>
T random_value(std::mt19937& rng);

template <>
double random_value<double>(std::mt19937& rng) {
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  return d(rng);
}

template <>
cplx random_value<cplx>(std::mt19937& rng) {
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  return {d(rng), d(rng)};
}

// Fills a random MNA-shaped matrix: conductance-like values plus a
// dominant diagonal on the node block and +-1 branch couplings.
template <typename T>
SparseMatrix<T> random_mna_values(const RandomSystem& s, int n_nodes,
                                  std::mt19937& rng) {
  SparseMatrix<T> a(s.pattern);
  for (const auto& [i, j] : s.coords)
    a.add(i, j, random_value<T>(rng) * T{0.3});
  for (int i = 0; i < n_nodes; ++i) a.add(i, i, T{4.0});
  // Branch couplings get unit-scale entries.
  const auto& rp = s.pattern->row_ptr();
  for (int r = n_nodes; r < s.pattern->dim(); ++r)
    for (std::size_t k = rp[static_cast<std::size_t>(r)];
         k < rp[static_cast<std::size_t>(r) + 1]; ++k) {
      const int c = s.pattern->col_idx()[k];
      if (c != r) {
        a.add(r, c, T{1.0});
        a.add(c, r, T{1.0});
      }
    }
  return a;
}

template <typename T>
double rel_err(const std::vector<T>& a, const std::vector<T>& b) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num = std::max(num, std::abs(a[i] - b[i]));
    den = std::max(den, std::abs(b[i]));
  }
  return num / (den > 0 ? den : 1.0);
}

template <typename T>
void check_dense_sparse_agree(int n_nodes, int n_branches,
                              std::uint32_t seed) {
  std::mt19937 rng(seed);
  const auto sys = random_mna_pattern(n_nodes, n_branches, rng);
  const auto a = random_mna_values<T>(sys, n_nodes, rng);
  const int n = sys.pattern->dim();

  std::vector<T> bvec(static_cast<std::size_t>(n));
  for (auto& v : bvec) v = random_value<T>(rng);

  LuFactorization<T> dense(a.to_dense());
  const std::vector<T> x_dense = dense.solve(bvec);

  SparseLu<T> lu;
  lu.factor(a);
  std::vector<T> x_sparse;
  lu.solve(bvec, x_sparse);

  EXPECT_LT(rel_err(x_sparse, x_dense), 1e-12)
      << "n_nodes=" << n_nodes << " branches=" << n_branches
      << " seed=" << seed;

  // Residual check against the original matrix.
  const auto r = a.multiply(x_sparse);
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(r[static_cast<std::size_t>(i)] -
                         bvec[static_cast<std::size_t>(i)]),
                0.0, 1e-9);
}

}  // namespace

TEST(SparsePattern, BuildSortsDeduplicatesAndAddsDiagonal) {
  PatternBuilder b(4);
  b.add(2, 1);
  b.add(2, 1);
  b.add(0, 3);
  const auto p = b.build(/*symmetrize=*/false);
  EXPECT_EQ(p->dim(), 4);
  // 2 unique off-diagonal coords + 4 diagonal entries.
  EXPECT_EQ(p->nnz(), 6u);
  EXPECT_GE(p->find(2, 1), 0);
  EXPECT_GE(p->find(0, 3), 0);
  EXPECT_EQ(p->find(1, 2), -1);
  EXPECT_EQ(p->find(3, 0), -1);
  for (int i = 0; i < 4; ++i) EXPECT_GE(p->find(i, i), 0);
  EXPECT_EQ(p->diag_slots().size(), 4u);
}

TEST(SparsePattern, SymmetrizeAddsTransposedCoords) {
  PatternBuilder b(3);
  b.add(0, 2);
  const auto p = b.build(/*symmetrize=*/true);
  EXPECT_GE(p->find(0, 2), 0);
  EXPECT_GE(p->find(2, 0), 0);
}

TEST(SparseMatrix, AddOutsidePatternThrows) {
  PatternBuilder b(3);
  b.add(0, 1);
  SparseMatrix<double> a(b.build(false));
  a.add(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(a.get(0, 1), 2.0);
  EXPECT_THROW(a.add(1, 2, 1.0), PatternMissError);
}

TEST(SparseMatrix, SlotMemoReplaysAndPatchesShiftedSequences) {
  PatternBuilder b(3);
  b.add(0, 1);
  b.add(1, 0);
  SparseMatrix<double> a(b.build(false));
  SlotMemo memo;

  memo.start_record();
  a.add(0, 1, 1.0, &memo);
  a.add(1, 0, 1.0, &memo);
  ASSERT_EQ(memo.slots.size(), 2u);

  memo.start_replay();
  a.add(0, 1, 1.0, &memo);  // fast path
  a.add(1, 0, 1.0, &memo);
  EXPECT_DOUBLE_EQ(a.get(0, 1), 2.0);

  // Shifted sequence (swapped order): must still land correctly.
  memo.start_replay();
  a.add(1, 0, 5.0, &memo);
  a.add(0, 1, 7.0, &memo);
  EXPECT_DOUBLE_EQ(a.get(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(a.get(0, 1), 9.0);

  // Longer-than-recorded sequence appends.
  memo.start_replay();
  a.add(1, 0, 0.0, &memo);
  a.add(0, 1, 0.0, &memo);
  a.add(2, 2, 3.0, &memo);
  EXPECT_DOUBLE_EQ(a.get(2, 2), 3.0);
}

TEST(MinDegree, ProducesAValidPermutation) {
  std::mt19937 rng(7);
  const auto sys = random_mna_pattern(12, 3, rng);
  const auto order = min_degree_order(*sys.pattern);
  ASSERT_EQ(order.size(), 15u);
  std::vector<char> seen(15, 0);
  for (int v : order) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 15);
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = 1;
  }
}

TEST(SparseOrdering, MinDegreeTieBreak) {
  // Pins the documented tie-break: equal minimum degrees eliminate the
  // LOWEST original index first, making the ordering a pure function of
  // the pattern (see min_degree_order in sparse.hpp).
  {
    // Star 0-{1,2,3,4} plus edge 3-4.  Ties at step 1 (leaves 1 vs 2),
    // step 3 (0, 3, 4 all degree 2) and step 4 (3 vs 4).
    PatternBuilder b(5);
    for (int leaf : {1, 2, 3, 4}) b.add(0, leaf);
    b.add(3, 4);
    const auto order = min_degree_order(*b.build(true));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 0, 3, 4}));
  }
  {
    // Path 0-1-2-3: both endpoints start at degree 1; index order wins.
    PatternBuilder b(4);
    b.add(0, 1);
    b.add(1, 2);
    b.add(2, 3);
    const auto order = min_degree_order(*b.build(true));
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  }
  {
    // Fully tied: an empty pattern (diagonal only) must come out in
    // index order, and repeated runs must agree exactly.
    PatternBuilder b(6);
    const auto p = b.build(true);
    const auto order = min_degree_order(*p);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
    EXPECT_EQ(order, min_degree_order(*p));
  }
}

TEST(SparseLu, AgreesWithDenseOnRandomMnaSystemsReal) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed)
    check_dense_sparse_agree<double>(10 + 3 * static_cast<int>(seed),
                                     static_cast<int>(seed % 4), seed);
}

TEST(SparseLu, AgreesWithDenseOnRandomMnaSystemsComplex) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed)
    check_dense_sparse_agree<cplx>(10 + 3 * static_cast<int>(seed),
                                   static_cast<int>(seed % 4), seed);
}

TEST(SparseLu, AgreesWithDenseOnSpdMatrices) {
  // SPD-ish: symmetric value assignment with a strong diagonal.
  std::mt19937 rng(42);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = 20 + 10 * trial;
    const auto sys = random_mna_pattern(n, 0, rng);
    SparseMatrix<double> a(sys.pattern);
    for (const auto& [i, j] : sys.coords) {
      if (i > j) continue;
      const double v = random_value<double>(rng) * 0.2;
      a.add(i, j, v);
      if (i != j) a.add(j, i, v);
    }
    for (int i = 0; i < n; ++i) a.add(i, i, 5.0);

    std::vector<double> b(static_cast<std::size_t>(n));
    for (auto& v : b) v = random_value<double>(rng);

    LuFactorization<double> dense(a.to_dense());
    SparseLu<double> lu;
    lu.factor(a);
    std::vector<double> xs;
    lu.solve(b, xs);
    EXPECT_LT(rel_err(xs, dense.solve(b)), 1e-12);
  }
}

TEST(SparseLu, RefactorReusesSymbolicAndMatchesFreshFactor) {
  std::mt19937 rng(11);
  const auto sys = random_mna_pattern(20, 4, rng);
  auto a = random_mna_values<double>(sys, 20, rng);

  SparseLu<double> lu;
  lu.factor(a);
  EXPECT_EQ(lu.symbolic_builds(), 1u);

  // New values, same pattern: refactor must not redo symbolic analysis.
  std::mt19937 rng2(12);
  auto a2 = random_mna_values<double>(sys, 20, rng2);
  lu.refactor(a2);
  EXPECT_EQ(lu.symbolic_builds(), 1u);

  std::vector<double> b(a2.values().size() ? static_cast<std::size_t>(
                                                 sys.pattern->dim())
                                           : 0u);
  for (auto& v : b) v = random_value<double>(rng2);
  std::vector<double> xs;
  lu.solve(b, xs);
  EXPECT_LT(rel_err(xs, LuFactorization<double>(a2.to_dense()).solve(b)),
            1e-12);
}

TEST(SparseLu, SingularMatrixParityWithDense) {
  // Two identical rows -> singular for both engines.
  PatternBuilder pb(3);
  pb.add(0, 1);
  pb.add(1, 0);
  pb.add(0, 0);
  pb.add(1, 1);
  pb.add(2, 2);
  SparseMatrix<double> a(pb.build());
  a.add(0, 0, 1.0);
  a.add(0, 1, 2.0);
  a.add(1, 0, 1.0);
  a.add(1, 1, 2.0);
  a.add(2, 2, 1.0);

  EXPECT_THROW(LuFactorization<double> dense(a.to_dense()),
               SingularMatrixError);
  SparseLu<double> lu;
  EXPECT_THROW(lu.factor(a), SingularMatrixError);
}

TEST(SparseLu, PivotDriftOnRefactorThrowsAndRefactorsAfterRepivot) {
  // Factor with a benign matrix, then collapse a pivot to ~0 while a
  // large entry elsewhere keeps the matrix well-conditioned: the frozen
  // pivot order is now bad and the refactor must say so.
  PatternBuilder pb(2);
  pb.add(0, 1);
  pb.add(1, 0);
  SparseMatrix<double> a(pb.build());
  a.add(0, 0, 1.0);
  a.add(1, 1, 1.0);
  a.add(0, 1, 0.0);
  a.add(1, 0, 0.0);

  SparseLu<double> lu;
  lu.factor(a);

  SparseMatrix<double> bad(a.pattern_ptr());
  bad.add(0, 0, 0.0);
  bad.add(0, 1, 1.0);
  bad.add(1, 0, 1.0);
  bad.add(1, 1, 0.0);
  EXPECT_THROW(lu.refactor(bad), PivotDriftError);

  // A full factor() re-pivots and handles it.
  lu.factor(bad);
  std::vector<double> x;
  lu.solve({2.0, 3.0}, x);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SparseLu, SolveIsReusableAcrossManyRhs) {
  std::mt19937 rng(5);
  const auto sys = random_mna_pattern(15, 2, rng);
  const auto a = random_mna_values<cplx>(sys, 15, rng);
  SparseLu<cplx> lu;
  lu.factor(a);
  LuFactorization<cplx> dense(a.to_dense());

  std::vector<cplx> b(static_cast<std::size_t>(sys.pattern->dim()));
  std::vector<cplx> x;
  for (int k = 0; k < 5; ++k) {
    for (auto& v : b) v = random_value<cplx>(rng);
    lu.solve(b, x);
    EXPECT_LT(rel_err(x, dense.solve(b)), 1e-12);
  }
}
