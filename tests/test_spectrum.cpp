#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dsp/signal.hpp"
#include "dsp/spectrum.hpp"

namespace {

using si::dsp::compute_power_spectrum;
using si::dsp::PowerSpectrum;
using si::dsp::WindowType;

class SpectrumWindowTest : public ::testing::TestWithParam<WindowType> {};

TEST_P(SpectrumWindowTest, CoherentToneCalibratedPower) {
  // Property: the integrated tone power must equal A^2/2 for every
  // window type (the tone-calibration convention).
  const std::size_t n = 4096;
  const double fs = 1e6;
  const double amp = 0.8;
  const double f = si::dsp::coherent_frequency(50e3, fs, n);
  const auto x = si::dsp::sine(n, amp, f, fs);
  const PowerSpectrum s = compute_power_spectrum(x, fs, GetParam());
  const std::size_t k0 = s.bin_of(f);
  double tone = 0.0;
  const int hw = si::dsp::leakage_halfwidth(GetParam());
  for (std::size_t k = k0 - hw; k <= k0 + hw; ++k) tone += s.power[k];
  EXPECT_NEAR(tone, amp * amp / 2.0, 1e-3 * amp * amp);
}

TEST_P(SpectrumWindowTest, WhiteNoisePowerRecovered) {
  // Property: ENBW-corrected band integration recovers total noise power.
  const std::size_t n = 1 << 15;
  const double fs = 1.0;
  const double sigma = 0.3;
  const auto x = si::dsp::white_noise(n, sigma, 99);
  const PowerSpectrum s = compute_power_spectrum(x, fs, GetParam());
  const double p = s.noise_power_in_band(0.0, fs / 2.0);
  EXPECT_NEAR(p, sigma * sigma, 0.1 * sigma * sigma);
}

INSTANTIATE_TEST_SUITE_P(
    AllWindows, SpectrumWindowTest,
    ::testing::Values(WindowType::kRectangular, WindowType::kHann,
                      WindowType::kBlackman, WindowType::kBlackmanHarris),
    [](const auto& info) {
      std::string n = si::dsp::window_name(info.param);
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST(Spectrum, BinBookkeeping) {
  const std::size_t n = 1024;
  const double fs = 2.45e6;
  const auto x = si::dsp::sine(n, 1.0, fs / 8.0, fs);
  const PowerSpectrum s = compute_power_spectrum(x, fs);
  EXPECT_EQ(s.power.size(), n / 2 + 1);
  EXPECT_DOUBLE_EQ(s.bin_width(), fs / static_cast<double>(n));
  EXPECT_EQ(s.bin_of(0.0), 0u);
  EXPECT_EQ(s.bin_of(fs / 2.0), n / 2);
  EXPECT_NEAR(s.bin_frequency(s.bin_of(100e3)), 100e3, s.bin_width());
}

TEST(Spectrum, PeakBinFindsTone) {
  const std::size_t n = 4096;
  const double fs = 1e6;
  const double f = si::dsp::coherent_frequency(123e3, fs, n);
  const auto x = si::dsp::sine(n, 1.0, f, fs);
  const PowerSpectrum s = compute_power_spectrum(x, fs);
  EXPECT_EQ(s.peak_bin(1, n / 2), s.bin_of(f));
}

TEST(Spectrum, DcComponentShowsAtBinZero) {
  const std::size_t n = 1024;
  std::vector<double> x(n, 0.25);
  const PowerSpectrum s = compute_power_spectrum(x, 1.0);
  // DC cluster integrates to (mean)^2 under energy normalization.
  double p = 0.0;
  for (int k = 0; k <= si::dsp::leakage_halfwidth(s.window); ++k)
    p += s.power[static_cast<std::size_t>(k)];
  EXPECT_NEAR(p, 0.25 * 0.25, 1e-9);
}

TEST(Spectrum, SpectrumDbClampsFloor) {
  const std::size_t n = 256;
  std::vector<double> x(n, 0.0);
  x[0] = 1e-30;
  const PowerSpectrum s = compute_power_spectrum(x, 1.0);
  const auto db = si::dsp::spectrum_db(s, 1.0, -180.0);
  for (double v : db) EXPECT_GE(v, -180.0);
}

TEST(Spectrum, RejectsNonPowerOfTwo) {
  std::vector<double> x(1000, 0.0);
  EXPECT_THROW(compute_power_spectrum(x, 1.0), std::invalid_argument);
}

TEST(Spectrum, TwoTonesResolved) {
  const std::size_t n = 8192;
  const double fs = 1e6;
  const double f1 = si::dsp::coherent_frequency(100e3, fs, n);
  const double f2 = si::dsp::coherent_frequency(150e3, fs, n);
  auto x = si::dsp::multitone(n, {{0.5, f1, 0.0}, {0.25, f2, 0.3}}, fs);
  const PowerSpectrum s = compute_power_spectrum(x, fs);
  double p1 = 0.0, p2 = 0.0;
  for (int d = -4; d <= 4; ++d) {
    p1 += s.power[s.bin_of(f1) + d];
    p2 += s.power[s.bin_of(f2) + d];
  }
  EXPECT_NEAR(p1, 0.125, 1e-3);
  EXPECT_NEAR(p2, 0.03125, 1e-3);
}

}  // namespace
