#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "spice/ac.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/elements.hpp"
#include "spice/mosfet.hpp"

namespace {

using namespace si::spice;

TEST(SpiceAc, LogSpaceCoversRange) {
  const auto f = log_space(1.0, 1000.0, 10);
  EXPECT_NEAR(f.front(), 1.0, 1e-12);
  EXPECT_NEAR(f.back(), 1000.0, 1e-6);
  EXPECT_GE(f.size(), 30u);
  for (std::size_t i = 1; i < f.size(); ++i) EXPECT_GT(f[i], f[i - 1]);
}

TEST(SpiceAc, RcLowpassCorner) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  auto& v1 = c.add<VoltageSource>("V1", in, c.ground(), 0.0);
  v1.set_ac_magnitude(1.0);
  const double rr = 1e3, cc_f = 159.155e-9;  // corner ~1 kHz
  c.add<Resistor>("R1", in, out, rr);
  c.add<Capacitor>("C1", out, c.ground(), cc_f);
  dc_operating_point(c);
  const double f0 = 1.0 / (2.0 * std::numbers::pi * rr * cc_f);
  const AcResult r = ac_analysis(c, {f0 / 100.0, f0, f0 * 100.0});
  EXPECT_NEAR(std::abs(r.voltage(c, 0, out)), 1.0, 1e-3);
  EXPECT_NEAR(std::abs(r.voltage(c, 1, out)), 1.0 / std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(std::abs(r.voltage(c, 2, out)), 0.01, 1e-3);
  // Phase at the corner is -45 degrees.
  EXPECT_NEAR(std::arg(r.voltage(c, 1, out)) * 180.0 / std::numbers::pi,
              -45.0, 0.5);
}

TEST(SpiceAc, CommonSourceAmplifierGain) {
  // NMOS with ideal current-source load modeled by a big resistor:
  // |Av| = gm * (ro || RL).
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId g = c.node("g");
  const NodeId d = c.node("d");
  MosfetParams p;
  p.lambda = 0.02;
  c.add<VoltageSource>("Vdd", vdd, c.ground(), 3.3);
  auto& vg = c.add<VoltageSource>("Vg", g, c.ground(), 1.0);
  vg.set_ac_magnitude(1.0);
  c.add<Resistor>("RL", vdd, d, 50e3);
  auto& m = c.add<Mosfet>("M1", MosType::kNmos, d, g, c.ground(), p);
  dc_operating_point(c);
  ASSERT_EQ(m.region(), MosRegion::kSaturation);
  const AcResult r = ac_analysis(c, {1e3});
  const double gain = std::abs(r.voltage(c, 0, d));
  const double ro = 1.0 / m.gds();
  const double expected = m.gm() * (ro * 50e3 / (ro + 50e3));
  EXPECT_NEAR(gain, expected, expected * 0.01);
}

TEST(SpiceAc, CapacitorBlocksDcPassesHighFreq) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  auto& v1 = c.add<VoltageSource>("V1", in, c.ground(), 0.0);
  v1.set_ac_magnitude(1.0);
  c.add<Capacitor>("C1", in, out, 1e-9);
  c.add<Resistor>("R1", out, c.ground(), 1e3);
  dc_operating_point(c);
  const AcResult r = ac_analysis(c, {1.0, 1e9});
  EXPECT_LT(std::abs(r.voltage(c, 0, out)), 1e-4);
  EXPECT_NEAR(std::abs(r.voltage(c, 1, out)), 1.0, 1e-3);
}

TEST(SpiceAc, MagnitudeDbHelper) {
  Circuit c;
  const NodeId in = c.node("in");
  auto& v1 = c.add<VoltageSource>("V1", in, c.ground(), 0.0);
  v1.set_ac_magnitude(1.0);
  c.add<Resistor>("R1", in, c.ground(), 1e3);
  dc_operating_point(c);
  const AcResult r = ac_analysis(c, {10.0, 100.0});
  const auto db = r.magnitude_db(c, in);
  ASSERT_EQ(db.size(), 2u);
  EXPECT_NEAR(db[0], 0.0, 1e-6);
}

}  // namespace
