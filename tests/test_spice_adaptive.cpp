#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "obs/telemetry.hpp"
#include "spice/circuit.hpp"
#include "spice/elements.hpp"
#include "spice/transient.hpp"

namespace {

using namespace si::spice;

/// Builds the canonical RC step circuit (tau = 1 ms).
void build_rc(Circuit& c) {
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>(
      "V1", in, c.ground(),
      std::make_unique<PulseWave>(0.0, 1.0, 0.0, 1e-9, 1e-9, 1.0, 2.0));
  c.add<Resistor>("R1", in, out, 1e3);
  c.add<Capacitor>("C1", out, c.ground(), 1e-6);
}

TEST(AdaptiveTransient, MatchesAnalyticRcResponse) {
  Circuit c;
  build_rc(c);
  TransientOptions opt;
  opt.t_stop = 5e-3;
  opt.dt = 20e-6;
  opt.adaptive = true;
  opt.lte_tol = 1e-5;
  Transient tr(c, opt);
  tr.probe_voltage("out");
  const auto res = tr.run();
  const auto& v = res.signal("v(out)");
  for (std::size_t k = 1; k < res.time.size(); k += 7) {
    const double expected = 1.0 - std::exp(-res.time[k] / 1e-3);
    EXPECT_NEAR(v[k], expected, 2e-3) << "t=" << res.time[k];
  }
}

TEST(AdaptiveTransient, LandsStepsOnPulseBreakpoints) {
  // A pulse edge inside an oversized step would be smeared across it;
  // with honor_breakpoints (the default) the stepper must clamp so an
  // accepted step ends exactly on each edge instant.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>(
      "V1", in, c.ground(),
      std::make_unique<PulseWave>(0.0, 1.0, 1e-3, 1e-4, 1e-4, 5e-4, 5e-3));
  c.add<Resistor>("R1", in, out, 1e3);
  c.add<Capacitor>("C1", out, c.ground(), 1e-7);
  TransientOptions opt;
  opt.t_stop = 3e-3;
  opt.dt = 20e-6;
  opt.adaptive = true;
  opt.lte_tol = 1e-4;
  Transient tr(c, opt);
  tr.probe_voltage("out");
  const auto res = tr.run();
  for (const double bp : {1.0e-3, 1.1e-3, 1.6e-3, 1.7e-3}) {
    double closest = 1e9;
    for (const double t : res.time)
      closest = std::min(closest, std::abs(t - bp));
    EXPECT_LT(closest, 1e-15) << "no step landed on breakpoint " << bp;
  }
}

TEST(AdaptiveTransient, UsesFewerStepsThanEquivalentFixedGrid) {
  // To reach similar accuracy on the exponential tail a fixed grid must
  // stay fine everywhere; the adaptive run coarsens as the waveform
  // flattens.
  Circuit c;
  build_rc(c);
  TransientOptions opt;
  opt.t_stop = 10e-3;
  opt.dt = 5e-6;
  opt.adaptive = true;
  opt.lte_tol = 1e-4;
  Transient tr(c, opt);
  tr.probe_voltage("out");
  const auto res = tr.run();
  const std::size_t fixed_steps =
      static_cast<std::size_t>(opt.t_stop / opt.dt);
  EXPECT_LT(res.time.size(), fixed_steps / 2);
  // Final value still accurate.
  EXPECT_NEAR(res.signal("v(out)").back(), 1.0, 1e-3);
}

TEST(AdaptiveTransient, StepsShrinkAtSharpEdges) {
  // A fast pulse inside a slow window forces local refinement: time
  // spacing near the edge is smaller than away from it.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>(
      "V1", in, c.ground(),
      std::make_unique<PulseWave>(0.0, 1.0, 5e-4, 1e-6, 1e-6, 2e-4, 1.0));
  c.add<Resistor>("R1", in, out, 1e3);
  c.add<Capacitor>("C1", out, c.ground(), 10e-9);  // tau = 10 us
  TransientOptions opt;
  opt.t_stop = 1.5e-3;
  opt.dt = 50e-6;
  opt.adaptive = true;
  opt.lte_tol = 1e-4;
  Transient tr(c, opt);
  tr.probe_voltage("out");
  const auto res = tr.run();
  // Smallest step taken near the edge vs largest step overall.
  double min_dt = 1e9, max_dt = 0.0;
  for (std::size_t k = 1; k < res.time.size(); ++k) {
    const double d = res.time[k] - res.time[k - 1];
    min_dt = std::min(min_dt, d);
    max_dt = std::max(max_dt, d);
  }
  EXPECT_LT(min_dt, max_dt / 8.0);
}

TEST(AdaptiveTransient, RespectsTStopExactly) {
  Circuit c;
  build_rc(c);
  TransientOptions opt;
  opt.t_stop = 1e-3;
  opt.dt = 3e-5;  // not a divisor of t_stop
  opt.adaptive = true;
  Transient tr(c, opt);
  const auto res = tr.run();
  EXPECT_NEAR(res.time.back(), 1e-3, 1e-12);
}

TEST(AdaptiveTransient, AccurateRunReportsNoClampedSteps) {
  Circuit c;
  build_rc(c);
  TransientOptions opt;
  opt.t_stop = 1e-3;
  opt.dt = 10e-6;
  opt.adaptive = true;
  opt.lte_tol = 1e-4;  // easily met by the stepper
  Transient tr(c, opt);
  const auto res = tr.run();
  EXPECT_GT(res.steps_accepted, 0u);
  EXPECT_EQ(res.lte_clamped_steps, 0u);
  EXPECT_EQ(res.steps_accepted, res.time.size() - 1);
}

TEST(AdaptiveTransient, DtMinClampedStepsAreReportedNotSilent) {
  // An unreachable tolerance with dt pinned at dt_min forces the
  // stepper to accept every step above lte_tol.  That used to happen
  // silently; now each clamped accept is counted on the result (and the
  // transient.lte_clamped telemetry counter).
  si::obs::set_enabled(true);
#if SI_OBS_ENABLED
  si::obs::Counter& clamped = si::obs::counter("transient.lte_clamped");
  const std::uint64_t clamped_before = clamped.value();
#endif

  Circuit c;
  build_rc(c);
  TransientOptions opt;
  opt.t_stop = 1e-3;
  opt.dt = 10e-6;
  opt.dt_min = 10e-6;  // dt cannot shrink below its starting value
  opt.adaptive = true;
  opt.lte_tol = 1e-14;  // unreachable at this step size
  Transient tr(c, opt);
  tr.probe_voltage("out");
  const auto res = tr.run();

  EXPECT_EQ(res.steps_rejected, 0u);  // nothing to retry: dt == dt_min
  EXPECT_GT(res.lte_clamped_steps, 0u);
  EXPECT_LE(res.lte_clamped_steps, res.steps_accepted);
  EXPECT_EQ(res.steps_accepted, res.time.size() - 1);
#if SI_OBS_ENABLED
  EXPECT_EQ(clamped.value(), clamped_before + res.lte_clamped_steps);
#endif
  EXPECT_NEAR(res.time.back(), opt.t_stop, 1e-15);
  // The clamped run is degraded, not wrong: the waveform still tracks
  // the analytic response to trapezoidal accuracy.
  EXPECT_NEAR(res.signal("v(out)").back(),
              1.0 - std::exp(-opt.t_stop / 1e-3), 2e-3);

  si::obs::set_enabled(false);
}

TEST(AdaptiveTransient, TighterToleranceMoreSteps) {
  auto steps_for = [&](double tol) {
    Circuit c;
    build_rc(c);
    TransientOptions opt;
    opt.t_stop = 3e-3;
    opt.dt = 10e-6;
    opt.adaptive = true;
    opt.lte_tol = tol;
    Transient tr(c, opt);
    return tr.run().time.size();
  };
  EXPECT_GT(steps_for(1e-6), steps_for(1e-3));
}

}  // namespace
