#include <gtest/gtest.h>

#include <cmath>

#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/elements.hpp"
#include "spice/mosfet.hpp"

namespace {

using namespace si::spice;

TEST(SpiceDc, ResistorDivider) {
  Circuit c;
  const NodeId vin = c.node("in");
  const NodeId mid = c.node("mid");
  c.add<VoltageSource>("V1", vin, c.ground(), 3.3);
  c.add<Resistor>("R1", vin, mid, 10e3);
  c.add<Resistor>("R2", mid, c.ground(), 20e3);
  const DcResult r = dc_operating_point(c);
  SolutionView sol(c, r.x);
  EXPECT_NEAR(sol.voltage(mid), 2.2, 1e-7);
  EXPECT_NEAR(sol.voltage(vin), 3.3, 1e-7);
}

TEST(SpiceDc, CurrentSourceIntoResistor) {
  Circuit c;
  const NodeId n1 = c.node("n1");
  // 1 mA from ground into n1 through the source.
  c.add<CurrentSource>("I1", c.ground(), n1, 1e-3);
  c.add<Resistor>("R1", n1, c.ground(), 1e3);
  const DcResult r = dc_operating_point(c);
  SolutionView sol(c, r.x);
  EXPECT_NEAR(sol.voltage(n1), 1.0, 1e-9);
}

TEST(SpiceDc, VoltageSourceBranchCurrent) {
  Circuit c;
  const NodeId n1 = c.node("n1");
  auto& v1 = c.add<VoltageSource>("V1", n1, c.ground(), 5.0);
  c.add<Resistor>("R1", n1, c.ground(), 1e3);
  const DcResult r = dc_operating_point(c);
  SolutionView sol(c, r.x);
  // 5 mA flows out of the source's + terminal, so the branch current
  // (into the + terminal) is -5 mA.
  EXPECT_NEAR(sol.branch_current(v1.branch()), -5e-3, 1e-9);
  EXPECT_NEAR(v1.dissipated_power(sol), 25e-3, 1e-9);
}

TEST(SpiceDc, VccsAmplifier) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("Vin", in, c.ground(), 0.1);
  c.add<Vccs>("G1", out, c.ground(), in, c.ground(), 1e-3);
  c.add<Resistor>("RL", out, c.ground(), 10e3);
  const DcResult r = dc_operating_point(c);
  SolutionView sol(c, r.x);
  // i = gm * vin = 0.1 mA into RL, but current flows out of node 'out':
  // v(out) = -gm * vin * RL = -1 V.
  EXPECT_NEAR(sol.voltage(out), -1.0, 1e-7);
}

TEST(SpiceDc, VcvsGain) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("Vin", in, c.ground(), 0.25);
  c.add<Vcvs>("E1", out, c.ground(), in, c.ground(), 4.0);
  c.add<Resistor>("RL", out, c.ground(), 1e3);
  const DcResult r = dc_operating_point(c);
  SolutionView sol(c, r.x);
  EXPECT_NEAR(sol.voltage(out), 1.0, 1e-9);
}

TEST(SpiceDc, SeriesResistorsKirchhoff) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  const NodeId d = c.node("d");
  c.add<VoltageSource>("V1", a, c.ground(), 9.0);
  c.add<Resistor>("R1", a, b, 1e3);
  c.add<Resistor>("R2", b, d, 2e3);
  c.add<Resistor>("R3", d, c.ground(), 3e3);
  const DcResult r = dc_operating_point(c);
  SolutionView sol(c, r.x);
  EXPECT_NEAR(sol.voltage(b), 9.0 * 5.0 / 6.0, 1e-7);
  EXPECT_NEAR(sol.voltage(d), 9.0 * 3.0 / 6.0, 1e-7);
}

TEST(SpiceDc, GroundAliases) {
  Circuit c;
  EXPECT_EQ(c.node("0"), c.ground());
  EXPECT_EQ(c.node("gnd"), c.ground());
  EXPECT_EQ(c.node("GND"), c.ground());
  EXPECT_EQ(c.node("sig"), c.node("sig"));
  EXPECT_NE(c.node("sig"), c.ground());
}

TEST(SpiceDc, FindElementByName) {
  Circuit c;
  c.add<Resistor>("Rx", c.node("a"), c.ground(), 1.0);
  EXPECT_NE(c.find("Rx"), nullptr);
  EXPECT_EQ(c.find("nope"), nullptr);
}

TEST(SpiceDc, DiodeConnectedNmosBias) {
  // Diode-connected NMOS fed by a current source: Vgs should satisfy
  // I = beta/2 * (Vgs - Vt)^2 (ignoring lambda at small vds... here
  // vds = vgs so include the (1 + lambda vds) factor).
  Circuit c;
  const NodeId g = c.node("gate");
  MosfetParams p;
  p.w = 20e-6;
  p.l = 2e-6;
  p.kp = 100e-6;
  p.vt0 = 0.8;
  p.lambda = 0.0;
  auto& m = c.add<Mosfet>("M1", MosType::kNmos, g, g, c.ground(), p);
  c.add<CurrentSource>("Ib", c.ground(), g, 50e-6);  // push 50 uA into gate
  const DcResult r = dc_operating_point(c);
  SolutionView sol(c, r.x);
  const double beta = p.beta();
  const double vgs_expected = p.vt0 + std::sqrt(2.0 * 50e-6 / beta);
  EXPECT_NEAR(sol.voltage(g), vgs_expected, 1e-6);
  EXPECT_EQ(m.region(), MosRegion::kSaturation);
  EXPECT_NEAR(m.id(), 50e-6, 1e-9);
}

TEST(SpiceDc, NmosCurrentMirrorCopiesCurrent) {
  Circuit c;
  const NodeId g = c.node("gate");
  const NodeId out = c.node("out");
  MosfetParams p;
  p.lambda = 0.0;  // ideal mirror
  c.add<Mosfet>("M1", MosType::kNmos, g, g, c.ground(), p);
  c.add<Mosfet>("M2", MosType::kNmos, out, g, c.ground(), p);
  c.add<CurrentSource>("Iref", c.ground(), g, 100e-6);
  c.add<VoltageSource>("Vd", out, c.ground(), 2.0);  // keep M2 saturated
  const DcResult r = dc_operating_point(c);
  (void)r;
  const auto* m2 = dynamic_cast<const Mosfet*>(c.find("M2"));
  ASSERT_NE(m2, nullptr);
  EXPECT_NEAR(m2->id(), 100e-6, 1e-9);
}

TEST(SpiceDc, GminSteppingRescuesHardCircuit) {
  // A floating gate node with only MOSFETs attached converges thanks to
  // the gmin-stepping fallback / device gmin.
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId mid = c.node("mid");
  MosfetParams p;
  c.add<VoltageSource>("Vdd", vdd, c.ground(), 3.3);
  c.add<Mosfet>("M1", MosType::kPmos, mid, mid, vdd, p);
  c.add<Mosfet>("M2", MosType::kNmos, mid, mid, c.ground(), p);
  const DcResult r = dc_operating_point(c);
  SolutionView sol(c, r.x);
  EXPECT_GT(sol.voltage(mid), 0.0);
  EXPECT_LT(sol.voltage(mid), 3.3);
}

TEST(SpiceDc, DcSweepResistorLoadLine) {
  Circuit c;
  const NodeId n1 = c.node("n1");
  auto& src = c.add<CurrentSource>("I1", c.ground(), n1, 0.0);
  c.add<Resistor>("R1", n1, c.ground(), 2e3);
  const std::vector<double> currents{1e-3, 2e-3, 3e-3};
  const auto volts = dc_sweep(
      c, currents, [&](double i) { src.set_level(i); },
      [&](const SolutionView& sol) { return sol.voltage(n1); });
  ASSERT_EQ(volts.size(), 3u);
  for (std::size_t k = 0; k < currents.size(); ++k)
    EXPECT_NEAR(volts[k], currents[k] * 2e3, 1e-7);
}

}  // namespace
