#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "spice/deck.hpp"
#include "spice/elements.hpp"
#include "spice/parser.hpp"

namespace {

using namespace si::spice;

TEST(Deck, OpOnly) {
  auto r = run_deck(R"(
V1 in 0 DC 3.0
R1 in out 1k
R2 out 0 2k
.op
)");
  SolutionView sol(r.circuit, r.op.x);
  EXPECT_NEAR(sol.voltage(r.node("out")), 2.0, 1e-6);
  EXPECT_FALSE(r.tran.has_value());
  EXPECT_FALSE(r.ac.has_value());
  EXPECT_FALSE(r.noise.has_value());
}

TEST(Deck, TransientWithProbes) {
  auto r = run_deck(R"(
V1 in 0 PULSE(0 1 0 1n 1n 1.9m 2m)
R1 in out 1k
C1 out 0 1u
.tran 1u 3m
.probe v(out) i(v1)
)");
  ASSERT_TRUE(r.tran.has_value());
  const auto& v = r.tran->signal("v(out)");
  ASSERT_FALSE(v.empty());
  // tau = 1 ms: ~63% at 1 ms.
  const std::size_t k1ms = 1000;
  EXPECT_NEAR(v[k1ms], 1.0 - std::exp(-1.0), 5e-3);
  EXPECT_NO_THROW(r.tran->signal("i(v1)"));
}

TEST(Deck, AcSweepWithSourceMagnitude) {
  auto r = run_deck(R"(
V1 in 0 DC 0 AC 1
R1 in out 1k
C1 out 0 159.155n
.ac dec 10 10 100k
)");
  ASSERT_TRUE(r.ac.has_value());
  // Find the bin nearest the 1 kHz corner: |H| ~ 0.707.
  const double f0 = 1.0 / (2.0 * std::numbers::pi * 1e3 * 159.155e-9);
  std::size_t best = 0;
  for (std::size_t k = 0; k < r.ac->freq.size(); ++k)
    if (std::abs(r.ac->freq[k] - f0) < std::abs(r.ac->freq[best] - f0))
      best = k;
  EXPECT_NEAR(std::abs(r.ac->voltage(r.circuit, best, r.node("out"))),
              1.0 / std::sqrt(2.0), 0.05);
}

TEST(Deck, NoiseAnalysis) {
  auto r = run_deck(R"(
R1 n1 0 10k
.noise v(n1) dec 5 1k 100k
)");
  ASSERT_TRUE(r.noise.has_value());
  const double expected = 4.0 * kBoltzmann * kRoomTemperature * 10e3;
  EXPECT_NEAR(r.noise->total_psd[0], expected, 1e-9 * expected);
}

TEST(Deck, CombinedAnalyses) {
  auto r = run_deck(R"(
V1 in 0 SIN(0 1 10k) AC 1
R1 in out 10k
C1 out 0 1n
.tran 1u 100u
.probe v(out)
.ac dec 5 100 1meg
.noise v(out) dec 5 100 1meg
)");
  EXPECT_TRUE(r.tran.has_value());
  EXPECT_TRUE(r.ac.has_value());
  EXPECT_TRUE(r.noise.has_value());
}

TEST(Deck, DirectiveErrors) {
  EXPECT_THROW(run_deck(".tran 1u"), ParseError);
  EXPECT_THROW(run_deck(".ac lin 5 1 10"), ParseError);
  EXPECT_THROW(run_deck(".noise i(v1) dec 5 1 10\nR1 a 0 1k"), ParseError);
  EXPECT_THROW(run_deck(".probe x(a)\nR1 a 0 1k"), ParseError);
}

TEST(Deck, AcMagnitudeOnCurrentSource) {
  auto r = run_deck(R"(
I1 0 n1 DC 0 AC 1
R1 n1 0 2k
.ac dec 2 1k 10k
)");
  ASSERT_TRUE(r.ac.has_value());
  EXPECT_NEAR(std::abs(r.ac->voltage(r.circuit, 0, r.node("n1"))), 2e3,
              1.0);
}

}  // namespace
