#include <gtest/gtest.h>

#include <cmath>

#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/elements.hpp"
#include "spice/mosfet.hpp"
#include "spice/op_report.hpp"
#include "spice/transient.hpp"

namespace {

using namespace si::spice;

/// Measures the drain current of a single NMOS at given Vgs / Vds.
double nmos_id(double vgs, double vds, const MosfetParams& p) {
  Circuit c;
  const NodeId d = c.node("d");
  const NodeId g = c.node("g");
  c.add<VoltageSource>("Vg", g, c.ground(), vgs);
  auto& vd = c.add<VoltageSource>("Vd", d, c.ground(), vds);
  (void)vd;
  c.add<Mosfet>("M1", MosType::kNmos, d, g, c.ground(), p);
  dc_operating_point(c);
  const auto* m = dynamic_cast<const Mosfet*>(c.find("M1"));
  return m->id();
}

TEST(Mosfet, CutoffBelowThreshold) {
  MosfetParams p;
  p.vt0 = 0.8;
  EXPECT_NEAR(nmos_id(0.5, 1.0, p), 0.0, 1e-9);
}

TEST(Mosfet, SaturationSquareLaw) {
  MosfetParams p;
  p.w = 10e-6;
  p.l = 1e-6;
  p.kp = 100e-6;
  p.vt0 = 0.8;
  p.lambda = 0.0;
  const double vov = 0.4;
  const double expected = 0.5 * p.beta() * vov * vov;
  EXPECT_NEAR(nmos_id(p.vt0 + vov, 2.0, p), expected, 1e-9);
}

TEST(Mosfet, TriodeRegionCurrent) {
  MosfetParams p;
  p.lambda = 0.0;
  const double vov = 0.5, vds = 0.1;
  const double expected = p.beta() * (vov * vds - 0.5 * vds * vds);
  EXPECT_NEAR(nmos_id(p.vt0 + vov, vds, p), expected, 1e-9);
}

TEST(Mosfet, ContinuousAcrossTriodeSaturationBoundary) {
  MosfetParams p;
  const double vov = 0.3;
  const double below = nmos_id(p.vt0 + vov, vov - 1e-6, p);
  const double above = nmos_id(p.vt0 + vov, vov + 1e-6, p);
  EXPECT_NEAR(below, above, std::abs(above) * 1e-3);
}

TEST(Mosfet, ChannelLengthModulationSlope) {
  MosfetParams p;
  p.lambda = 0.05;
  const double i1 = nmos_id(1.2, 1.0, p);
  const double i2 = nmos_id(1.2, 2.0, p);
  EXPECT_GT(i2, i1);
  EXPECT_NEAR(i2 / i1, (1 + 0.05 * 2.0) / (1 + 0.05 * 1.0), 1e-6);
}

TEST(Mosfet, PmosMirrorsNmosBehaviour) {
  // PMOS with source at VDD conducts when gate is pulled low.
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId d = c.node("d");
  const NodeId g = c.node("g");
  MosfetParams p;
  p.lambda = 0.0;
  c.add<VoltageSource>("Vdd", vdd, c.ground(), 3.3);
  c.add<VoltageSource>("Vg", g, c.ground(), 3.3 - 1.2);  // Vsg = 1.2
  c.add<VoltageSource>("Vd", d, c.ground(), 1.0);
  c.add<Mosfet>("M1", MosType::kPmos, d, g, vdd, p);
  dc_operating_point(c);
  const auto* m = dynamic_cast<const Mosfet*>(c.find("M1"));
  const double vov = 1.2 - p.vt0;
  // Current flows source->drain: drain current is negative by our
  // drain->source sign convention.
  EXPECT_NEAR(m->id(), -0.5 * p.beta() * vov * vov, 1e-9);
  EXPECT_EQ(m->region(), MosRegion::kSaturation);
}

TEST(Mosfet, SymmetricSourceDrainSwap) {
  // Reverse the terminals: same magnitude, opposite sign of current.
  MosfetParams p;
  p.lambda = 0.0;
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId g = c.node("g");
  c.add<VoltageSource>("Vg", g, c.ground(), 1.3);
  c.add<VoltageSource>("Va", a, c.ground(), -0.2);
  // Device with drain at 'a' (below source potential): conducts backward.
  c.add<Mosfet>("M1", MosType::kNmos, a, g, c.ground(), p);
  dc_operating_point(c);
  const auto* m = dynamic_cast<const Mosfet*>(c.find("M1"));
  EXPECT_LT(m->id(), 0.0);
}

TEST(Mosfet, OperatingPointAccessors) {
  MosfetParams p;
  p.lambda = 0.0;
  Circuit c;
  const NodeId d = c.node("d");
  const NodeId g = c.node("g");
  c.add<VoltageSource>("Vg", g, c.ground(), 1.2);
  c.add<VoltageSource>("Vd", d, c.ground(), 2.0);
  auto& m = c.add<Mosfet>("M1", MosType::kNmos, d, g, c.ground(), p);
  dc_operating_point(c);
  EXPECT_NEAR(m.vgs(), 1.2, 1e-9);
  EXPECT_NEAR(m.vds(), 2.0, 1e-9);
  EXPECT_NEAR(m.vdsat(), 0.4, 1e-9);
  EXPECT_NEAR(m.gm(), p.beta() * 0.4, 1e-9);
}

TEST(Mosfet, GateCapacitanceHoldsChargeWhenSwitchedOff) {
  // The SI memory principle at device level: charge a gate cap through a
  // switch, open the switch, and the gate voltage (hence drain current)
  // holds.
  Circuit c;
  const NodeId d = c.node("d");
  const NodeId g = c.node("g");
  const NodeId in = c.node("in");
  MosfetParams p;
  p.lambda = 0.0;
  p.cgs = 0.5e-12;
  c.add<VoltageSource>("Vd", d, c.ground(), 2.0);
  c.add<VoltageSource>("Vin", in, c.ground(), 1.2);
  // Switch closes for the first 1 us, then opens.
  c.add<Switch>("S1", in, g,
                std::make_unique<PulseWave>(1.0, 0.0, 1e-6, 1e-9, 1e-9,
                                            1e-3, 2e-3),
                100.0, 1e15);
  auto& m = c.add<Mosfet>("M1", MosType::kNmos, d, g, c.ground(), p);

  TransientOptions opt;
  opt.t_stop = 5e-6;
  opt.dt = 5e-9;
  Transient tr(c, opt);
  tr.probe_voltage("g");
  const auto res = tr.run();
  const auto& vg = res.signal("v(g)");
  // After opening (t > 1 us), the gate holds 1.2 V.
  EXPECT_NEAR(vg.back(), 1.2, 1e-2);
  EXPECT_NEAR(m.id(), 0.5 * p.beta() * 0.4 * 0.4, 1e-6);
}

TEST(Mosfet, RejectsNonPositiveGeometry) {
  MosfetParams p;
  p.w = -1.0;
  Circuit c;
  EXPECT_THROW(
      c.add<Mosfet>("M1", MosType::kNmos, c.node("d"), c.node("g"),
                    c.ground(), p),
      std::invalid_argument);
}


TEST(Mosfet, OpReportCollectsDevices) {
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId g = c.node("g");
  c.add<VoltageSource>("Vdd", vdd, c.ground(), 3.3);
  MosfetParams p;
  c.add<Mosfet>("M1", MosType::kNmos, g, g, c.ground(), p);
  c.add<Resistor>("Rb", vdd, g, 50e3);
  const DcResult r = dc_operating_point(c);
  const auto report = si::spice::op_report(c, r.x);
  ASSERT_EQ(report.devices.size(), 1u);
  EXPECT_EQ(report.devices[0].name, "M1");
  EXPECT_EQ(report.device("M1").region, MosRegion::kSaturation);
  EXPECT_GT(report.device("M1").gm, 0.0);
  EXPECT_TRUE(report.all_saturated());
  EXPECT_GT(report.supply_power, 0.0);
  EXPECT_THROW(report.device("nope"), std::out_of_range);
  EXPECT_EQ(si::spice::region_name(MosRegion::kTriode), "triode");
}

}  // namespace
