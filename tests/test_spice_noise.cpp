#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "spice/ac.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/elements.hpp"
#include "spice/mosfet.hpp"
#include "spice/noise.hpp"

namespace {

using namespace si::spice;

TEST(SpiceNoise, ResistorSpotNoise) {
  // A lone resistor to ground: output PSD = 4kTR at low frequency.
  Circuit c;
  const NodeId n1 = c.node("n1");
  const double rr = 10e3;
  c.add<Resistor>("R1", n1, c.ground(), rr);
  dc_operating_point(c);
  NoiseOptions opt;
  opt.output_p = n1;
  opt.freqs = {1e3};
  const NoiseResult res = noise_analysis(c, opt);
  const double expected = 4.0 * kBoltzmann * kRoomTemperature * rr;
  EXPECT_NEAR(res.total_psd[0], expected, expected * 1e-9);
}

TEST(SpiceNoise, KtOverCIntegratedNoise) {
  // RC network: integrated output noise = kT/C regardless of R.
  for (double rr : {1e3, 100e3}) {
    Circuit c;
    const NodeId n1 = c.node("n1");
    const double cap = 1e-12;
    c.add<Resistor>("R1", n1, c.ground(), rr);
    c.add<Capacitor>("C1", n1, c.ground(), cap);
    dc_operating_point(c);
    NoiseOptions opt;
    opt.output_p = n1;
    // Integrate far beyond the corner.
    const double f_corner = 1.0 / (2.0 * std::numbers::pi * rr * cap);
    opt.freqs = log_space(f_corner * 1e-3, f_corner * 1e4, 40);
    const NoiseResult res = noise_analysis(c, opt);
    const double ktc = kBoltzmann * kRoomTemperature / cap;
    const double integrated =
        res.integrated_power(opt.freqs.front(), opt.freqs.back());
    EXPECT_NEAR(integrated, ktc, 0.02 * ktc) << "R=" << rr;
  }
}

TEST(SpiceNoise, TwoResistorsAddInPowers) {
  // Two equal parallel resistors: output PSD = 4kT * (R/2).
  Circuit c;
  const NodeId n1 = c.node("n1");
  const double rr = 20e3;
  c.add<Resistor>("R1", n1, c.ground(), rr);
  c.add<Resistor>("R2", n1, c.ground(), rr);
  dc_operating_point(c);
  NoiseOptions opt;
  opt.output_p = n1;
  opt.freqs = {1e3};
  const NoiseResult res = noise_analysis(c, opt);
  const double expected = 4.0 * kBoltzmann * kRoomTemperature * (rr / 2.0);
  EXPECT_NEAR(res.total_psd[0], expected, expected * 1e-9);
  EXPECT_EQ(res.by_source.size(), 2u);
  EXPECT_NEAR(res.by_source[0].psd[0], res.by_source[1].psd[0],
              expected * 1e-9);
}

TEST(SpiceNoise, MosfetThermalNoiseAtDiodeNode) {
  // Diode-connected MOSFET: output impedance ~1/gm, channel noise
  // 4kT*gamma*gm -> v_n^2 = 4kT*gamma/gm.
  Circuit c;
  const NodeId g = c.node("g");
  MosfetParams p;
  p.lambda = 0.0;
  c.add<Mosfet>("M1", MosType::kNmos, g, g, c.ground(), p);
  c.add<CurrentSource>("Ib", c.ground(), g, 100e-6);
  dc_operating_point(c);
  const auto* m = dynamic_cast<const Mosfet*>(c.find("M1"));
  ASSERT_NE(m, nullptr);
  NoiseOptions opt;
  opt.output_p = g;
  opt.freqs = {1e3};
  const NoiseResult res = noise_analysis(c, opt);
  const double expected = 4.0 * kBoltzmann * kRoomTemperature * (2.0 / 3.0) *
                          m->gm() / (m->gm() * m->gm());
  EXPECT_NEAR(res.total_psd[0], expected, 0.02 * expected);
}

TEST(SpiceNoise, FlickerNoiseRisesAtLowFrequency) {
  Circuit c;
  const NodeId g = c.node("g");
  MosfetParams p;
  p.lambda = 0.0;
  p.kf = 1e-24;
  c.add<Mosfet>("M1", MosType::kNmos, g, g, c.ground(), p);
  c.add<CurrentSource>("Ib", c.ground(), g, 100e-6);
  dc_operating_point(c);
  NoiseOptions opt;
  opt.output_p = g;
  opt.freqs = {1.0, 10.0, 1e6};
  const NoiseResult res = noise_analysis(c, opt);
  EXPECT_GT(res.total_psd[0], res.total_psd[1]);
  EXPECT_GT(res.total_psd[1], res.total_psd[2]);
  // 1/f slope between 1 and 10 Hz: close to 10x.
  const double flicker0 = res.total_psd[0] - res.total_psd[2];
  const double flicker1 = res.total_psd[1] - res.total_psd[2];
  EXPECT_NEAR(flicker0 / flicker1, 10.0, 0.5);
}

TEST(SpiceNoise, RequiresFrequencies) {
  Circuit c;
  c.add<Resistor>("R", c.node("a"), c.ground(), 1e3);
  NoiseOptions opt;
  opt.output_p = c.node("a");
  EXPECT_THROW(noise_analysis(c, opt), std::invalid_argument);
}

}  // namespace
