#include <gtest/gtest.h>

#include <cmath>

#include "spice/ac.hpp"
#include "spice/dc.hpp"
#include "spice/elements.hpp"
#include "spice/mosfet.hpp"
#include "spice/parser.hpp"
#include "spice/transient.hpp"

namespace {

using namespace si::spice;

TEST(ParserValue, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(parse_value("10k"), 10e3);
  EXPECT_DOUBLE_EQ(parse_value("1p"), 1e-12);
  EXPECT_DOUBLE_EQ(parse_value("0.15p"), 0.15e-12);
  EXPECT_DOUBLE_EQ(parse_value("2.45meg"), 2.45e6);
  EXPECT_DOUBLE_EQ(parse_value("100u"), 100e-6);
  EXPECT_DOUBLE_EQ(parse_value("3.3"), 3.3);
  EXPECT_DOUBLE_EQ(parse_value("-8u"), -8e-6);
  EXPECT_DOUBLE_EQ(parse_value("5n"), 5e-9);
  EXPECT_DOUBLE_EQ(parse_value("1g"), 1e9);
  EXPECT_DOUBLE_EQ(parse_value("2f"), 2e-15);
  EXPECT_THROW(parse_value("abc"), std::invalid_argument);
  EXPECT_THROW(parse_value("1x"), std::invalid_argument);
}

TEST(Parser, ResistorDividerDeck) {
  Circuit c = parse_netlist(R"(
* simple divider
V1 in 0 DC 3.3
R1 in mid 10k
R2 mid 0 20k
.end
)");
  const DcResult r = dc_operating_point(c);
  SolutionView sol(c, r.x);
  EXPECT_NEAR(sol.voltage(c.node("mid")), 2.2, 1e-6);
}

TEST(Parser, BareNumberIsDc) {
  Circuit c = parse_netlist("I1 0 n1 1m\nR1 n1 0 1k\n");
  const DcResult r = dc_operating_point(c);
  SolutionView sol(c, r.x);
  EXPECT_NEAR(sol.voltage(c.node("n1")), 1.0, 1e-6);
}

TEST(Parser, SineSourceTransient) {
  Circuit c = parse_netlist(R"(
V1 in 0 SIN(0 1 1meg)
R1 in 0 1k
)");
  TransientOptions opt;
  opt.t_stop = 1e-6;
  opt.dt = 1e-9;
  Transient tr(c, opt);
  tr.probe_voltage("in");
  const auto res = tr.run();
  const auto& v = res.signal("v(in)");
  // Peak ~1 at a quarter period (250 ns).
  EXPECT_NEAR(v[250], 1.0, 1e-3);
}

TEST(Parser, PulseAndSwitch) {
  Circuit c = parse_netlist(R"(
V1 in 0 DC 2.0
S1 in out PULSE(0 3.3 0 1n 1n 90n 200n) 1 1e12
R1 out 0 1k
)");
  TransientOptions opt;
  opt.t_stop = 200e-9;
  opt.dt = 1e-9;
  Transient tr(c, opt);
  tr.probe_voltage("out");
  const auto res = tr.run();
  const auto& v = res.signal("v(out)");
  EXPECT_NEAR(v[45], 2.0, 1e-2);   // switch on
  EXPECT_NEAR(v[150], 0.0, 1e-2);  // switch off
}

TEST(Parser, PwlSource) {
  Circuit c = parse_netlist(R"(
V1 a 0 PWL(0 0 1u 1 2u 0)
R1 a 0 1k
)");
  TransientOptions opt;
  opt.t_stop = 2e-6;
  opt.dt = 1e-8;
  Transient tr(c, opt);
  tr.probe_voltage("a");
  const auto res = tr.run();
  EXPECT_NEAR(res.signal("v(a)")[100], 1.0, 1e-9);
  EXPECT_NEAR(res.signal("v(a)")[50], 0.5, 1e-9);
}

TEST(Parser, ControlledSources) {
  Circuit c = parse_netlist(R"(
V1 in 0 DC 0.5
G1 gout 0 in 0 1m
Rg gout 0 1k
E1 eout 0 in 0 4
Re eout 0 1k
)");
  const DcResult r = dc_operating_point(c);
  SolutionView sol(c, r.x);
  EXPECT_NEAR(sol.voltage(c.node("gout")), -0.5, 1e-6);
  EXPECT_NEAR(sol.voltage(c.node("eout")), 2.0, 1e-6);
}

TEST(Parser, MosfetWithModelAndGeometry) {
  Circuit c = parse_netlist(R"(
.model nmod NMOS (KP=100u VTO=0.8 LAMBDA=0)
Vd d 0 DC 2.0
Vg g 0 DC 1.2
M1 d g 0 nmod W=10u L=1u
)");
  dc_operating_point(c);
  const auto* m = dynamic_cast<const Mosfet*>(c.find("m1"));
  ASSERT_NE(m, nullptr);
  EXPECT_NEAR(m->id(), 0.5 * (100e-6 * 10.0) * 0.16, 1e-9);
}

TEST(Parser, MosfetWithBulkAndBodyEffect) {
  Circuit c = parse_netlist(R"(
.model nmod NMOS (KP=100u VTO=0.8 LAMBDA=0 GAMMA=0.5 PHI=0.7)
Vd d 0 DC 2.5
Vg g 0 DC 2.0
Vs s 0 DC 0.5
M1 d g s 0 nmod W=10u L=1u
)");
  dc_operating_point(c);
  const auto* m = dynamic_cast<const Mosfet*>(c.find("m1"));
  ASSERT_NE(m, nullptr);
  // Vsb = 0.5: Vt = 0.8 + 0.5*(sqrt(1.2) - sqrt(0.7)).
  const double vt = 0.8 + 0.5 * (std::sqrt(1.2) - std::sqrt(0.7));
  const double vov = (2.0 - 0.5) - vt;
  EXPECT_NEAR(m->id(), 0.5 * 1e-3 * vov * vov, 1e-8);
}

TEST(Parser, ContinuationLinesAndComments) {
  Circuit c = parse_netlist(R"(
* a divider split over lines
V1 in 0
+ DC 3.0      ; inline comment
R1 in out 1k
R2 out 0
+ 2k
)");
  const DcResult r = dc_operating_point(c);
  SolutionView sol(c, r.x);
  EXPECT_NEAR(sol.voltage(c.node("out")), 2.0, 1e-6);
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse_netlist("Q1 a b c"), ParseError);
  EXPECT_THROW(parse_netlist("R1 a b"), ParseError);
  EXPECT_THROW(parse_netlist("M1 d g s missing"), ParseError);
  EXPECT_THROW(parse_netlist(".model x NMOS (BAD=1)"), ParseError);
  EXPECT_THROW(parse_netlist(".model x JFET (KP=1)"), ParseError);
  EXPECT_THROW(parse_netlist(".tran 1n 1u"), ParseError);
  EXPECT_THROW(parse_netlist("+ R1 a b 1k"), ParseError);
  EXPECT_THROW(parse_netlist("R1 a b 1k extra ="), ParseError);
  try {
    parse_netlist("V1 a 0 DC 1\nR1 a b\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Parser, EndStopsParsing) {
  Circuit c = parse_netlist(R"(
R1 a 0 1k
.end
garbage that would not parse
)");
  EXPECT_NE(c.find("r1"), nullptr);
}

TEST(Parser, ClassAbMemoryPairDeck) {
  // The Fig. 1 memory pair expressed as a deck; quiescent matches the
  // C++-built netlist used by the bench.
  Circuit c = parse_netlist(R"(
.model nmem NMOS (KP=100u VTO=0.8 LAMBDA=0.02 CGS=0.15p)
.model pmem PMOS (KP=40u  VTO=0.8 LAMBDA=0.02 CGS=0.15p)
Vdd vdd 0 DC 3.3
MN  d gn 0   nmem W=2u L=20u
MP  d gp vdd pmem W=5u L=20u
Sn  d gn DC 3.3 100 1e12
Sp  d gp DC 3.3 100 1e12
)");
  dc_operating_point(c);
  const auto* mn = dynamic_cast<const Mosfet*>(c.find("mn"));
  ASSERT_NE(mn, nullptr);
  EXPECT_NEAR(mn->id(), 3.73e-6, 0.1e-6);
  EXPECT_EQ(mn->region(), MosRegion::kSaturation);
}


TEST(Parser, CurrentControlledSources) {
  // F: current mirror via a 0 V ammeter; H: transresistance.
  si::spice::Circuit c = si::spice::parse_netlist(R"(
V1 in 0 DC 1.0
Vamm in mid 0
R1 mid 0 1k
F1 0 fout Vamm 2.0
Rf fout 0 1k
H1 hout 0 Vamm 500
Rh hout 0 1k
)");
  const si::spice::DcResult r = si::spice::dc_operating_point(c);
  si::spice::SolutionView sol(c, r.x);
  // i(Vamm) = -1 mA (current into + terminal convention); F doubles it
  // into Rf: v(fout) = -2 mA * ... sign per convention.
  EXPECT_NEAR(std::abs(sol.voltage(c.node("fout"))), 2.0, 1e-6);
  // H: v(hout) = 500 * i = -0.5 V magnitude.
  EXPECT_NEAR(std::abs(sol.voltage(c.node("hout"))), 0.5, 1e-6);
}

TEST(Parser, ControlledSourceUnknownSenseThrows) {
  EXPECT_THROW(si::spice::parse_netlist("F1 a 0 Vmissing 2.0"),
               si::spice::ParseError);
}

TEST(Parser, RejectsTrailingGarbageInValues) {
  // "10kz" used to silently parse as 10k, hiding typos.
  EXPECT_THROW(parse_value("10kz"), std::invalid_argument);
  EXPECT_THROW(parse_value("1megx"), std::invalid_argument);
  EXPECT_THROW(parse_value("inf"), std::invalid_argument);
  EXPECT_THROW(parse_value("nan"), std::invalid_argument);
  EXPECT_THROW(parse_value(""), std::invalid_argument);
  EXPECT_THROW(parse_netlist("R1 a 0 10kz"), ParseError);
}

TEST(Parser, DuplicateElementNameThrows) {
  try {
    parse_netlist("R1 a 0 1k\nR1 a 0 2k\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("first defined at line 1"),
              std::string::npos);
  }
}

TEST(Parser, DuplicateModelNameThrows) {
  EXPECT_THROW(
      parse_netlist(".model m NMOS (KP=1u)\n.model m PMOS (KP=1u)\n"),
      ParseError);
}

TEST(Parser, PwlTimesMustStrictlyIncrease) {
  EXPECT_THROW(parse_netlist("V1 a 0 PWL(0 0 1u 1 0.5u 0)\nR1 a 0 1k\n"),
               ParseError);
  EXPECT_THROW(parse_netlist("V1 a 0 PWL(0 0 1u 1 1u 0)\nR1 a 0 1k\n"),
               ParseError);
}

TEST(Parser, MosfetGeometryMustBePositive) {
  EXPECT_THROW(parse_netlist(".model m NMOS (KP=100u VTO=0.8)\n"
                             "M1 d g 0 m W=0 L=1u\n"),
               ParseError);
  EXPECT_THROW(parse_netlist(".model m NMOS (KP=0 VTO=0.8)\n"
                             "M1 d g 0 m W=1u L=1u\n"),
               ParseError);
}

TEST(Parser, ParseIndexRecordsDeckLines) {
  ParseIndex idx;
  parse_netlist("V1 in 0 DC 1\nR1 in out 1k\nR2 out 0 1k\n", &idx);
  EXPECT_EQ(idx.element("v1"), 1u);
  EXPECT_EQ(idx.element("r1"), 2u);
  EXPECT_EQ(idx.node("in"), 1u);   // first reference wins
  EXPECT_EQ(idx.node("out"), 2u);
  EXPECT_EQ(idx.element("nope"), 0u);
  EXPECT_EQ(idx.node("nope"), 0u);
}

}  // namespace
