#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "spice/circuit.hpp"
#include "spice/elements.hpp"
#include "spice/transient.hpp"

namespace {

using namespace si::spice;

TEST(SpiceTransient, RcStepResponseMatchesAnalytic) {
  // 1V step into RC (tau = 1 ms): v(t) = 1 - exp(-t/tau).
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>(
      "V1", in, c.ground(),
      std::make_unique<PulseWave>(0.0, 1.0, 0.0, 1e-9, 1e-9, 1.0, 2.0));
  c.add<Resistor>("R1", in, out, 1e3);
  c.add<Capacitor>("C1", out, c.ground(), 1e-6);

  TransientOptions opt;
  opt.t_stop = 5e-3;
  opt.dt = 1e-6;
  Transient tr(c, opt);
  tr.probe_voltage("out");
  const TransientResult res = tr.run();
  const auto& v = res.signal("v(out)");
  ASSERT_EQ(v.size(), res.time.size());
  for (std::size_t k = 100; k < res.time.size(); k += 500) {
    const double expected = 1.0 - std::exp(-res.time[k] / 1e-3);
    EXPECT_NEAR(v[k], expected, 2e-3) << "t=" << res.time[k];
  }
}

TEST(SpiceTransient, BackwardEulerAlsoConverges) {
  Circuit c;
  const NodeId out = c.node("out");
  c.add<CurrentSource>("I1", c.ground(), out, 1e-3);
  c.add<Capacitor>("C1", out, c.ground(), 1e-6);
  c.add<Resistor>("Rbig", out, c.ground(), 1e9);

  TransientOptions opt;
  opt.t_stop = 1e-3;
  opt.dt = 1e-6;
  opt.integrator = Integrator::kBackwardEuler;
  // Start from zero state: a DC solve would put 1 mA into the 1 GOhm
  // bleeder and start the capacitor at 1 MV.
  opt.start_from_dc = false;
  Transient tr(c, opt);
  tr.probe_voltage("out");
  const auto res = tr.run();
  // Capacitor integrates: v = I*t/C = 1 V at 1 ms.
  EXPECT_NEAR(res.signal("v(out)").back(), 1.0, 5e-3);
}

TEST(SpiceTransient, SineSteadyStateAmplitude) {
  // RC lowpass driven at its corner: |H| = 1/sqrt(2).
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  const double rr = 1e3, cc_f = 1e-6;
  const double f0 = 1.0 / (2.0 * std::numbers::pi * rr * cc_f);
  c.add<VoltageSource>("V1", in, c.ground(),
                       std::make_unique<SineWave>(0.0, 1.0, f0));
  c.add<Resistor>("R1", in, out, rr);
  c.add<Capacitor>("C1", out, c.ground(), cc_f);

  TransientOptions opt;
  opt.t_stop = 20.0 / f0;
  opt.dt = 1.0 / (f0 * 400.0);
  Transient tr(c, opt);
  tr.probe_voltage("out");
  const auto res = tr.run();
  const auto& v = res.signal("v(out)");
  double peak = 0.0;
  for (std::size_t k = v.size() / 2; k < v.size(); ++k)
    peak = std::max(peak, std::abs(v[k]));
  EXPECT_NEAR(peak, 1.0 / std::sqrt(2.0), 0.01);
}

TEST(SpiceTransient, SwitchTracksClock) {
  // Switch chops a DC source into a load; output follows the clock.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("V1", in, c.ground(), 2.0);
  TwoPhaseClock clk{1e-6, 3.3, 0.0, 1e-9, 20e-9};
  c.add<Switch>("S1", in, out, clk.phase1(), 1.0, 1e12);
  c.add<Resistor>("RL", out, c.ground(), 1e3);

  TransientOptions opt;
  opt.t_stop = 3e-6;
  opt.dt = 5e-9;
  Transient tr(c, opt);
  tr.probe_voltage("out");
  const auto res = tr.run();
  const auto& v = res.signal("v(out)");
  // Mid phase-1 of the second period (t = 1.25 us): on.
  const auto idx_of = [&](double t) {
    return static_cast<std::size_t>(std::llround(t / opt.dt));
  };
  EXPECT_NEAR(v[idx_of(1.25e-6)], 2.0, 1e-2);
  // Mid phase-2 (t = 1.75 us): off.
  EXPECT_NEAR(v[idx_of(1.75e-6)], 0.0, 1e-2);
}

TEST(SpiceTransient, CurrentProbeRecordsBranch) {
  Circuit c;
  const NodeId in = c.node("in");
  c.add<VoltageSource>("V1", in, c.ground(), 1.0);
  c.add<Resistor>("R1", in, c.ground(), 500.0);
  TransientOptions opt;
  opt.t_stop = 1e-6;
  opt.dt = 1e-7;
  Transient tr(c, opt);
  tr.probe_current("V1");
  const auto res = tr.run();
  for (double i : res.signal("i(V1)")) EXPECT_NEAR(i, -2e-3, 1e-9);
}

TEST(SpiceTransient, OnStepCallbackFires) {
  Circuit c;
  const NodeId n1 = c.node("n1");
  c.add<CurrentSource>("I1", c.ground(), n1, 1e-3);
  c.add<Resistor>("R1", n1, c.ground(), 1e3);
  TransientOptions opt;
  opt.t_stop = 1e-6;
  opt.dt = 1e-7;
  Transient tr(c, opt);
  int calls = 0;
  tr.run([&](double, const SolutionView& sol) {
    ++calls;
    EXPECT_NEAR(sol.voltage(n1), 1.0, 1e-9);
  });
  EXPECT_EQ(calls, 11);  // t=0 plus 10 steps
}

TEST(SpiceTransient, RejectsBadOptions) {
  Circuit c;
  c.add<Resistor>("R", c.node("a"), c.ground(), 1.0);
  TransientOptions opt;
  opt.t_stop = 0.0;
  opt.dt = 1e-9;
  EXPECT_THROW(Transient(c, opt), std::invalid_argument);
  opt.t_stop = 1e-6;
  opt.dt = 0.0;
  EXPECT_THROW(Transient(c, opt), std::invalid_argument);
}

TEST(SpiceTransient, UnknownProbeThrows) {
  Circuit c;
  c.add<Resistor>("R", c.node("a"), c.ground(), 1.0);
  TransientOptions opt;
  opt.t_stop = 1e-6;
  opt.dt = 1e-7;
  Transient tr(c, opt);
  tr.probe_current("missing");
  EXPECT_THROW(tr.run(), std::invalid_argument);
}


TEST(SpiceTransient, NonMultipleTStopEndsWithExactPartialStep) {
  // t_stop = 10.5 dt: the grid must take 10 full steps plus one half
  // step landing exactly on t_stop.  The old llround() grid rounded to
  // 11 full steps and overshot t_stop by dt/2.  RC discharge (smooth,
  // no source discontinuity) so the analytic check isolates the
  // partial-step integration itself.
  Circuit c;
  const NodeId out = c.node("out");
  c.add<Resistor>("R1", out, c.ground(), 1e3);
  c.add<Capacitor>("C1", out, c.ground(), 1e-6);

  TransientOptions opt;
  opt.dt = 1e-4;
  opt.t_stop = 10.5 * opt.dt;
  Transient tr(c, opt);
  tr.set_initial_voltage("out", 2.0);
  tr.probe_voltage("out");
  const auto res = tr.run();

  ASSERT_EQ(res.time.size(), 12u);  // t = 0, 10 full steps, 1 half step
  EXPECT_DOUBLE_EQ(res.time.back(), opt.t_stop);
  EXPECT_DOUBLE_EQ(res.time[10], 10.0 * opt.dt);
  EXPECT_NEAR(res.time[11] - res.time[10], 0.5 * opt.dt, 1e-18);
  EXPECT_EQ(res.steps_accepted, 11u);
  EXPECT_EQ(res.steps_rejected, 0u);
  // The shortened final step integrates its actual dt/2 interval: the
  // decay ratio across it matches exp(-dt/2tau) (tau = 1 ms).  An
  // absolute compare would be polluted by the first-step companion
  // start-up error, which this grid fix does not touch.
  const auto& v = res.signal("v(out)");
  EXPECT_NEAR(v[11] / v[10], std::exp(-0.5 * opt.dt / 1e-3), 1e-4);
}

TEST(SpiceTransient, ExactMultipleTStopKeepsFullGrid) {
  Circuit c;
  const NodeId n1 = c.node("n1");
  c.add<CurrentSource>("I1", c.ground(), n1, 1e-3);
  c.add<Resistor>("R1", n1, c.ground(), 1e3);
  TransientOptions opt;
  opt.t_stop = 1e-6;
  opt.dt = 1e-7;
  Transient tr(c, opt);
  const auto res = tr.run();
  ASSERT_EQ(res.time.size(), 11u);
  EXPECT_DOUBLE_EQ(res.time.back(), opt.t_stop);
  EXPECT_EQ(res.steps_accepted, 10u);
}

TEST(SpiceTransient, TStopShorterThanDtStillReachesTStop) {
  // t_stop = 0.4 dt used to round to zero steps, returning only t = 0.
  Circuit c;
  const NodeId n1 = c.node("n1");
  c.add<CurrentSource>("I1", c.ground(), n1, 1e-3);
  c.add<Resistor>("R1", n1, c.ground(), 1e3);
  TransientOptions opt;
  opt.dt = 1e-6;
  opt.t_stop = 0.4 * opt.dt;
  Transient tr(c, opt);
  tr.probe_voltage("n1");
  const auto res = tr.run();
  ASSERT_EQ(res.time.size(), 2u);
  EXPECT_DOUBLE_EQ(res.time.back(), opt.t_stop);
  EXPECT_NEAR(res.signal("v(n1)").back(), 1.0, 1e-9);
}

TEST(SpiceTransient, DuplicateProbesCollapseToOneSink) {
  // Probing the same node (or source) twice used to register two sinks
  // feeding one signals vector, interleaving doubled samples.
  Circuit c;
  const NodeId in = c.node("in");
  c.add<VoltageSource>("V1", in, c.ground(), 1.0);
  c.add<Resistor>("R1", in, c.ground(), 500.0);
  TransientOptions opt;
  opt.t_stop = 1e-6;
  opt.dt = 1e-7;
  Transient tr(c, opt);
  tr.probe_voltage("in");
  tr.probe_voltage("in");
  tr.probe_current("V1");
  tr.probe_current("V1");
  const auto res = tr.run();
  EXPECT_EQ(res.signals.size(), 2u);
  const auto& v = res.signal("v(in)");
  const auto& i = res.signal("i(V1)");
  ASSERT_EQ(v.size(), res.time.size());
  ASSERT_EQ(i.size(), res.time.size());
  for (double vv : v) EXPECT_NEAR(vv, 1.0, 1e-9);
  for (double ii : i) EXPECT_NEAR(ii, -2e-3, 1e-9);
}

TEST(SpiceTransient, InitialVoltagePresetsCapacitor) {
  // RC discharge from a preset initial condition: v(t) = v0 e^{-t/tau}.
  Circuit c;
  const NodeId out = c.node("out");
  c.add<Resistor>("R1", out, c.ground(), 1e3);
  c.add<Capacitor>("C1", out, c.ground(), 1e-6);
  TransientOptions opt;
  opt.t_stop = 2e-3;
  opt.dt = 1e-6;
  Transient tr(c, opt);
  tr.set_initial_voltage("out", 2.0);
  tr.probe_voltage("out");
  const auto res = tr.run();
  const auto& v = res.signal("v(out)");
  EXPECT_NEAR(v[0], 2.0, 1e-9);
  for (std::size_t k = 100; k < v.size(); k += 400) {
    EXPECT_NEAR(v[k], 2.0 * std::exp(-res.time[k] / 1e-3), 5e-3)
        << res.time[k];
  }
}

}  // namespace
