#include <gtest/gtest.h>

#include <cmath>

#include "si/supply.hpp"

namespace {

using si::cells::max_modulation_index;
using si::cells::minimum_supply;
using si::cells::minimum_supply_with_cmfb;
using si::cells::SupplyDesign;

TEST(Supply, QuiescentPoint) {
  SupplyDesign d;  // Vt = 1 V, overdrives per header
  const auto r = minimum_supply(d, 0.0);
  EXPECT_NEAR(r.eq1_volts, 0.25 + 0.20 + 0.20 + 0.25, 1e-12);
  EXPECT_NEAR(r.eq2_volts, 1.0 + 1.0 + 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(r.minimum_volts, r.eq2_volts);
  EXPECT_TRUE(r.feasible_at(3.3));
}

TEST(Supply, PaperClaimFullModulationAt3p3V) {
  // "the use of low power supply voltage, say 3.3 V, is possible, given
  // the threshold voltages around 1 V, even with large input currents."
  SupplyDesign d;
  EXPECT_TRUE(minimum_supply(d, 1.0).feasible_at(3.3));
  EXPECT_TRUE(minimum_supply(d, 2.0).feasible_at(3.3));
  EXPECT_GT(max_modulation_index(d, 3.3), 2.0);
}

TEST(Supply, SqrtGrowthWithModulationIndex) {
  SupplyDesign d;
  const double m0 = minimum_supply(d, 0.0).eq2_volts;
  const double m3 = minimum_supply(d, 3.0).eq2_volts;
  // sqrt(1+3) = 2: the overdrive part doubles.
  EXPECT_NEAR(m3 - 2.0, (m0 - 2.0) * 2.0, 1e-12);
}

TEST(Supply, RejectsNegativeModulation) {
  EXPECT_THROW(minimum_supply(SupplyDesign{}, -0.1), std::invalid_argument);
}

TEST(Supply, MaxModulationIndexIsConsistent) {
  SupplyDesign d;
  const double mi = max_modulation_index(d, 3.0);
  EXPECT_TRUE(minimum_supply(d, mi * 0.999).feasible_at(3.0));
  EXPECT_FALSE(minimum_supply(d, mi * 1.01).feasible_at(3.0));
}

TEST(Supply, InfeasibleSupplyGivesZero) {
  SupplyDesign d;
  EXPECT_DOUBLE_EQ(max_modulation_index(d, 1.0), 0.0);
}

TEST(Supply, CmfbHeadroomRaisesRequirement) {
  SupplyDesign d;
  const auto ff = minimum_supply(d, 1.0);
  const auto fb = minimum_supply_with_cmfb(d, 1.0, 0.4);
  EXPECT_NEAR(fb.minimum_volts, ff.minimum_volts + 0.4, 1e-12);
}

TEST(Supply, LowerThresholdsAllowLowerSupply) {
  SupplyDesign lo;
  lo.vt_mn = lo.vt_mp = 0.4;
  // The 1.2 V / 0.8 mW direction of the authors' follow-up work [15].
  EXPECT_LT(minimum_supply(lo, 0.5).minimum_volts, 2.0);
}

}  // namespace
