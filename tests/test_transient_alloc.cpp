// Verifies the allocation-free hot-loop contract: after warm-up (first
// couple of steps build the pattern, symbolic factorization, slot memos
// and workspaces), Newton iterations and transient steps perform zero
// heap allocations.  Global operator new is instrumented; this test
// must stay in its own binary.
//
// Telemetry is switched ON for every test here: recording (relaxed
// atomic counters, the fixed-bin histogram, the preallocated span ring)
// must not allocate either — only instrument registration may, and that
// happens during warm-up.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/telemetry.hpp"
#include "runtime/parallel.hpp"
#include "runtime/rng_stream.hpp"
#include "si/netlists.hpp"
#include "spice/dc.hpp"
#include "spice/mna.hpp"
#include "spice/mna_batch.hpp"
#include "spice/mosfet.hpp"
#include "spice/transient.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace si::spice;
using namespace si::cells::netlists;

/// Delay-line fixture shared by both tests.
DelayLineChainHandles build_fixture(Circuit& c) {
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  DelayStageOptions opt;
  const auto h = build_delay_line_chain(c, 2, opt, "dl_");
  c.add<CurrentSource>("Iin", c.ground(), h.in, 5e-6);
  return h;
}

TEST(TransientAlloc, SparseNewtonLoopIsAllocationFreeAfterWarmup) {
  si::obs::set_enabled(true);
  Circuit c;
  build_fixture(c);
  c.finalize();

  MnaEngine engine(c, SolverKind::kSparse);
  NewtonOptions nopt;
  StampContext ctx;
  ctx.mode = AnalysisMode::kDcOperatingPoint;
  si::linalg::Vector x;
  engine.newton(ctx, x, nopt);
  {
    SolutionView sol(c, x);
    for (const auto& e : c.elements()) e->accept(sol, ctx);
  }

  ctx.mode = AnalysisMode::kTransient;
  ctx.dt = 200e-9 / 400.0;
  auto step = [&](int k) {
    ctx.time = k * ctx.dt;
    engine.newton(ctx, x, nopt);
    SolutionView sol(c, x);
    for (const auto& e : c.elements()) e->accept(sol, ctx);
  };

  // Warm-up: slot memos record, the sparse LU builds its symbolic
  // factorization and workspaces.
  for (int k = 1; k <= 5; ++k) step(k);

  const std::uint64_t before = g_allocs.load();
  const std::uint64_t ws_before = engine.stats().workspace_allocs;
  for (int k = 6; k <= 60; ++k) step(k);
  const std::uint64_t after = g_allocs.load();

  EXPECT_EQ(after - before, 0u)
      << "heap allocations leaked into the warm Newton/transient loop";
  EXPECT_EQ(engine.stats().workspace_allocs, ws_before);
}

TEST(TransientAlloc, SchurNewtonLoopIsAllocationFreeAfterWarmup) {
  // The domain-decomposition path: per-block gather/refactor, the
  // serial Schur assembly, and the three solve phases must all run out
  // of the workspaces hoisted into SchurLu::attach().  At one thread
  // the parallel_for bodies run inline (and they capture only `this`,
  // staying in the std::function small-buffer slot), so the whole warm
  // loop is heap-silent.
  si::obs::set_enabled(true);
  si::runtime::set_thread_count(1);
  Circuit c;
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  DelayStageOptions opt;
  // Large enough that the BBD partition is non-degenerate.
  const auto h = build_delay_line_chain(c, 12, opt, "dl_");
  c.add<CurrentSource>("Iin", c.ground(), h.in, 5e-6);
  c.finalize();

  MnaEngine engine(c, SolverKind::kSchur);
  NewtonOptions nopt;
  StampContext ctx;
  ctx.mode = AnalysisMode::kDcOperatingPoint;
  si::linalg::Vector x;
  engine.newton(ctx, x, nopt);
  ASSERT_EQ(engine.active_solver(), SolverKind::kSchur);
  {
    SolutionView sol(c, x);
    for (const auto& e : c.elements()) e->accept(sol, ctx);
  }

  ctx.mode = AnalysisMode::kTransient;
  ctx.dt = 200e-9 / 400.0;
  auto step = [&](int k) {
    ctx.time = k * ctx.dt;
    engine.newton(ctx, x, nopt);
    SolutionView sol(c, x);
    for (const auto& e : c.elements()) e->accept(sol, ctx);
  };

  for (int k = 1; k <= 5; ++k) step(k);

  const std::uint64_t before = g_allocs.load();
  const std::uint64_t ws_before = engine.stats().workspace_allocs;
  for (int k = 6; k <= 60; ++k) step(k);
  const std::uint64_t after = g_allocs.load();
  si::runtime::set_thread_count(0);

  EXPECT_EQ(after - before, 0u)
      << "heap allocations leaked into the warm schur Newton loop";
  EXPECT_EQ(engine.stats().workspace_allocs, ws_before);
  EXPECT_EQ(engine.stats().schur_fallbacks, 0u);
}

TEST(TransientAlloc, DenseNewtonLoopIsAllocationFreeAfterWarmup) {
  si::obs::set_enabled(true);
  Circuit c;
  build_fixture(c);
  c.finalize();

  MnaEngine engine(c, SolverKind::kDense);
  NewtonOptions nopt;
  StampContext ctx;
  ctx.mode = AnalysisMode::kTransient;
  ctx.dt = 200e-9 / 400.0;
  si::linalg::Vector x(c.system_size(), 0.0);
  for (int k = 1; k <= 5; ++k) {
    ctx.time = k * ctx.dt;
    engine.newton(ctx, x, nopt);
  }
  const std::uint64_t before = g_allocs.load();
  for (int k = 6; k <= 40; ++k) {
    ctx.time = k * ctx.dt;
    engine.newton(ctx, x, nopt);
  }
  EXPECT_EQ(g_allocs.load() - before, 0u);
}

TEST(TransientAlloc, TransientRunStepsAllocateOnlyDuringWarmup) {
  // Integrated check through Transient::run: probe recording, accept,
  // and the engine together must stop allocating once warm.
  si::obs::set_enabled(true);
  Circuit c;
  const auto h = build_fixture(c);

  TransientOptions topt;
  topt.t_stop = 200e-9 / 4.0;
  topt.dt = 200e-9 / 400.0;
  topt.erc_gate = false;
  Transient tr(c, topt);
  tr.probe_voltage(c.node_name(h.in));
  tr.probe_voltage(c.node_name(h.out));

  std::vector<std::uint64_t> per_step;
  per_step.reserve(128);
  tr.run([&](double, const SolutionView&) {
    per_step.push_back(g_allocs.load());
  });

  ASSERT_GE(per_step.size(), 20u);
  // Everything after the first few steps must be allocation-flat.
  EXPECT_EQ(per_step.back(), per_step[5])
      << "transient step loop allocated after warm-up";
}

TEST(TransientAlloc, BatchedRefactorSolveIsAllocationFreeAfterWarmup) {
  // The batched Monte-Carlo hot loop: per-lane stamping, SoA
  // refactor, and the batched substitution must stop allocating once
  // the engine workspaces and slot memos are warm.
  si::obs::set_enabled(true);
  Circuit c;
  c.add<VoltageSource>("Vdd", c.node("vdd"), c.ground(), 3.3);
  DelayStageOptions opt;
  const auto h = build_delay_line_chain(c, 2, opt, "dl_");
  c.add<CurrentSource>("Iin", c.ground(), h.in, 5e-6);

  // Pre-capture devices + nominals so apply() itself is allocation-free.
  std::vector<std::pair<Mosfet*, MosfetParams>> devices;
  for (const auto& e : c.elements())
    if (auto* m = dynamic_cast<Mosfet*>(e.get()))
      devices.emplace_back(m, m->params());
  const std::function<void(std::uint64_t)> apply = [&](std::uint64_t seed) {
    si::runtime::RngStream rng(seed);
    for (const auto& [mos, nominal] : devices) {
      MosfetParams p = nominal;
      p.kp = nominal.kp * (1.0 + 0.02 * rng.normal());
      mos->set_params(p);
    }
  };

  constexpr std::size_t kLanes = 4;
  BatchedDcEngine engine(c, kLanes, BatchedDcEngine::Options{});
  std::uint64_t seeds[kLanes];
  BatchedLaneResult results[kLanes];
  auto run_batch = [&](std::uint64_t base) {
    for (std::size_t k = 0; k < kLanes; ++k) seeds[k] = base + k;
    engine.solve_batch(seeds, kLanes, apply, results);
    for (std::size_t k = 0; k < kLanes; ++k)
      ASSERT_TRUE(results[k].converged) << "lane " << k;
  };

  run_batch(100);  // warm-up: pattern, symbolic, memos, workspaces
  run_batch(200);  // second pass: memos replay

  const std::uint64_t before = g_allocs.load();
  for (int r = 0; r < 10; ++r) run_batch(300 + 10 * r);
  EXPECT_EQ(g_allocs.load() - before, 0u)
      << "heap allocations leaked into the warm batched MC loop";
}

}  // namespace
