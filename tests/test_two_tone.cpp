#include <gtest/gtest.h>

#include <cmath>

#include "analysis/measure.hpp"
#include "si/delay_line.hpp"

namespace {

using si::analysis::run_two_tone_test;
using si::analysis::TwoToneConfig;

TEST(TwoTone, LinearDutHasNoImd) {
  TwoToneConfig cfg;
  cfg.fft_points = 1 << 14;
  cfg.clock_hz = 1e6;
  cfg.f1_hz = 90e3;
  cfg.f2_hz = 110e3;
  cfg.settle_samples = 0;
  const auto r = run_two_tone_test(
      [](const std::vector<double>& x) { return x; }, 1.0, cfg);
  EXPECT_LT(r.imd3_db, -120.0);
  EXPECT_NEAR(r.tone_power, 0.5, 1e-3);
}

TEST(TwoTone, CubicNonlinearityGivesPredictedImd3) {
  // y = x + c3 x^3: IMD3 amplitude = 3 c3 A^3 / 4 per product.
  const double c3 = 0.01;
  TwoToneConfig cfg;
  cfg.fft_points = 1 << 14;
  cfg.clock_hz = 1e6;
  cfg.f1_hz = 90e3;
  cfg.f2_hz = 110e3;
  cfg.settle_samples = 0;
  const double amp = 1.0;
  const auto r = run_two_tone_test(
      [&](const std::vector<double>& x) {
        auto y = x;
        for (auto& v : y) v = v + c3 * v * v * v;
        return y;
      },
      amp, cfg);
  const double imd_amp = 3.0 * c3 * amp * amp * amp / 4.0;
  // Two products, each with power imd_amp^2/2, relative to A^2/2.
  const double expected_db =
      10.0 * std::log10(2.0 * (imd_amp * imd_amp / 2.0) / (amp * amp / 2.0));
  EXPECT_NEAR(r.imd3_db, expected_db, 1.0);
}

TEST(TwoTone, DelayLineImdConsistentWithThd) {
  // The class-AB delay line's cubic injection shows up as IMD3 of the
  // same order of magnitude as its single-tone THD.
  TwoToneConfig cfg;
  cfg.fft_points = 1 << 15;
  cfg.clock_hz = 5e6;
  cfg.f1_hz = 5e3;
  cfg.f2_hz = 8e3;
  si::cells::DelayLineConfig dl;
  const auto r = run_two_tone_test(
      [&](const std::vector<double>& x) {
        si::cells::DelayLine line(dl);
        return line.run_dm(x);
      },
      4e-6, cfg);  // 4 uA per tone -> 8 uA envelope peak
  EXPECT_LT(r.imd3_db, -40.0);
  EXPECT_GT(r.imd3_db, -75.0);
}

TEST(TwoTone, RejectsBadConfig) {
  TwoToneConfig cfg;
  cfg.fft_points = 1000;
  EXPECT_THROW(run_two_tone_test(
                   [](const std::vector<double>& x) { return x; }, 1.0, cfg),
               std::invalid_argument);
  cfg.fft_points = 1 << 12;
  cfg.f1_hz = cfg.f2_hz = 10e3;
  EXPECT_THROW(run_two_tone_test(
                   [](const std::vector<double>& x) { return x; }, 1.0, cfg),
               std::invalid_argument);
}

TEST(TwoTone, DutLengthMismatchThrows) {
  TwoToneConfig cfg;
  cfg.fft_points = 1 << 10;
  cfg.settle_samples = 0;
  EXPECT_THROW(
      run_two_tone_test(
          [](const std::vector<double>& x) {
            return std::vector<double>(x.begin(), x.begin() + 3);
          },
          1.0, cfg),
      std::runtime_error);
}

}  // namespace
