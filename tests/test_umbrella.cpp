// Compile-and-smoke test of the umbrella header: every public API is
// reachable from a single include.
#include <gtest/gtest.h>

#include "si_toolkit.hpp"

namespace {

TEST(Umbrella, EverySubsystemReachable) {
  // linalg
  si::linalg::Matrix m = si::linalg::Matrix::identity(2);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  // dsp
  EXPECT_TRUE(si::dsp::is_power_of_two(64));
  // spice
  si::spice::Circuit c;
  c.add<si::spice::Resistor>("R1", c.node("a"), c.ground(), 1e3);
  c.add<si::spice::VoltageSource>("V1", c.node("a"), c.ground(), 1.0);
  const auto r = si::spice::dc_operating_point(c);
  EXPECT_EQ(r.x.size(), c.system_size());
  // cells
  si::cells::MemoryCell cell(si::cells::MemoryCellParams::ideal(), 1);
  EXPECT_DOUBLE_EQ(cell.process(1e-6), -1e-6);
  // dsm
  si::dsm::IdealSecondOrderModulator mod(0.5, 0.5, 0.25, 0.25, 1.0);
  EXPECT_TRUE(mod.step(0.1) == 1 || mod.step(0.1) == -1);
  // analysis
  EXPECT_EQ(si::analysis::fmt(1.0, 0), "1");
}

}  // namespace
