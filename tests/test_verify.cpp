// End-to-end tests of the static verification pack: the abstract
// interpreter's soundness against the DC solver, the witness-backed
// property checkers (every reported corner must reproduce), the exact
// clock-phase timing including the sub-sample overlap regression, and
// the verify.* telemetry counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "erc/check.hpp"
#include "obs/telemetry.hpp"
#include "si/netlists.hpp"
#include "spice/dc.hpp"
#include "spice/elements.hpp"
#include "spice/mosfet.hpp"
#include "spice/parser.hpp"
#include "verify/phase.hpp"
#include "verify/verify.hpp"

namespace {

using namespace si;
using spice::Circuit;
using spice::NodeId;

Circuit parse(const std::string& deck) { return spice::parse_netlist(deck); }

const char* kModels =
    ".model nmem NMOS (KP=100u VTO=0.8 LAMBDA=0.02 CGS=0.15p)\n"
    ".model pmem PMOS (KP=40u  VTO=0.8 LAMBDA=0.02 CGS=0.15p)\n";

/// The examples/decks delay line, inlined: two cascaded class-AB cells
/// on non-overlapping 1 MHz phases.
std::string delay_line_deck(double vdd) {
  const std::string v = std::to_string(vdd);
  return std::string(kModels) + "Vdd vdd 0 DC " + v +
         "\n"
         "MN1 d1 gn1 0   nmem W=4u  L=4u\n"
         "MP1 d1 gp1 vdd pmem W=10u L=4u\n"
         "S1N gn1 d1 PULSE(0 " + v + " 20n 10n 10n 460n 1u) 1k 1g\n"
         "S1P gp1 d1 PULSE(0 " + v + " 20n 10n 10n 460n 1u) 1k 1g\n"
         "Ib1 0 d1 DC 10u\n"
         "Iin 0 d1 DC 2u\n"
         "MN2 d2 gn2 0   nmem W=4u  L=4u\n"
         "MP2 d2 gp2 vdd pmem W=10u L=4u\n"
         "S2N gn2 d2 PULSE(0 " + v + " 520n 10n 10n 460n 1u) 1k 1g\n"
         "S2P gp2 d2 PULSE(0 " + v + " 520n 10n 10n 460n 1u) 1k 1g\n"
         "SC  d1  d2 PULSE(0 " + v + " 520n 10n 10n 460n 1u) 1k 1g\n"
         "Ib2 0 d2 DC 10u\n";
}

/// The examples/decks modulator section (integrator pair, sense diode,
/// switched feedback mirror), parameterized on the supply.
std::string modulator_deck(double vdd) {
  const std::string v = std::to_string(vdd);
  return std::string(kModels) + "Vdd vdd 0 DC " + v +
         "\n"
         "MN1 d1 gn1 0   nmem W=4u  L=4u\n"
         "MP1 d1 gp1 vdd pmem W=10u L=4u\n"
         "S1N gn1 d1 PULSE(0 " + v + " 20n 10n 10n 460n 1u) 1k 1g\n"
         "S1P gp1 d1 PULSE(0 " + v + " 20n 10n 10n 460n 1u) 1k 1g\n"
         "Ib1 0 d1 DC 10u\n"
         "Iin 0 d1 DC 2u\n"
         "SC  d1 d2 PULSE(0 " + v + " 520n 10n 10n 460n 1u) 1k 1g\n"
         "MD  d2 d2 0 nmem W=4u L=4u\n"
         "IbD 0 d2 DC 10u\n"
         "MM  df d2 0 nmem W=2u L=4u\n"
         "SF  df d1 PULSE(0 " + v + " 20n 10n 10n 460n 1u) 1k 1g\n";
}

const verify::Finding* find_rule(const verify::VerifyResult& r,
                                 const std::string& rule) {
  for (const auto& f : r.findings)
    if (f.rule == rule) return &f;
  return nullptr;
}

double witness(const verify::Finding& f, const std::string& name) {
  for (const auto& w : f.witness)
    if (w.name == name) return w.value;
  return std::numeric_limits<double>::quiet_NaN();
}

// ---------------------------------------------------------------------
// Clean decks prove clean, with every node bounded
// ---------------------------------------------------------------------

TEST(Verify, DelayLineDeckProvesClean) {
  Circuit c = parse(delay_line_deck(3.3));
  const verify::VerifyResult r = verify::analyze(c);
  EXPECT_TRUE(r.findings.empty());
  ASSERT_EQ(r.pairs.size(), 2u);
  EXPECT_TRUE(r.pairs[0].resolved);
  EXPECT_TRUE(r.pairs[1].resolved);
  EXPECT_EQ(r.stats.nodes_resolved, r.stats.nodes);
  EXPECT_GT(r.stats.segments, 1u);
}

TEST(Verify, ModulatorFeedbackLoopResolvesToFixpoint) {
  Circuit c = parse(modulator_deck(3.3));
  const verify::VerifyResult r = verify::analyze(c);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.stats.nodes_resolved, r.stats.nodes);
  // The feedback loop must converge well before the iteration cap.
  EXPECT_LT(r.stats.iterations, 64u);
}

TEST(Verify, CleanMemoryCellBuilderStaysClean) {
  Circuit c;
  cells::netlists::MemoryPairOptions opt;
  cells::netlists::build_class_ab_memory_pair(c, opt, "m_");
  const verify::VerifyResult r = verify::analyze(c);
  EXPECT_TRUE(r.findings.empty());
}

// ---------------------------------------------------------------------
// Soundness: the DC solution lies inside the abstract ranges
// ---------------------------------------------------------------------

TEST(Verify, AbstractRangesContainDcOperatingPoint) {
  // Diode-tied pair (always sampling) so the DC solve is well-posed.
  const std::string deck = std::string(kModels) +
                           "Vdd vdd 0 DC 3.3\n"
                           "MN1 d d 0   nmem W=4u  L=4u\n"
                           "MP1 d d vdd pmem W=10u L=4u\n"
                           "Iin 0 d DC 12u\n";
  Circuit c = parse(deck);
  const verify::VerifyResult r = verify::analyze(c);
  ASSERT_TRUE(r.findings.empty());

  Circuit cs = parse(deck);
  spice::DcOptions o;
  o.erc_gate = false;  // soundness is what is under test here
  const spice::DcResult dc = spice::dc_operating_point(cs, o);
  const spice::SolutionView sol(cs, dc.x);
  for (const auto& nr : r.ranges) {
    const NodeId n = cs.node(nr.node);
    ASSERT_FALSE(nr.v.is_empty()) << nr.node;
    EXPECT_GE(sol.voltage(n), nr.v.lo) << nr.node;
    EXPECT_LE(sol.voltage(n), nr.v.hi) << nr.node;
  }
}

// ---------------------------------------------------------------------
// Witness round trips
// ---------------------------------------------------------------------

TEST(Verify, SupplyFloorWitnessRoundTrip) {
  // 1.72 V clears the nominal Eq. (1)-(2) floor (1.7 V) but not the
  // worst-case corner: Vdd at -2 % against both Vt at +50 mV.
  Circuit c = parse(modulator_deck(1.72));
  const verify::VerifyResult r = verify::analyze(c);
  const verify::Finding* f = find_rule(r, "si.supply-floor-worstcase");
  ASSERT_NE(f, nullptr);
  EXPECT_LT(f->margin, 0.0);
  EXPECT_NEAR(witness(*f, "vdd"), 1.72 * 0.98, 1e-6);
  EXPECT_NEAR(witness(*f, "vt_n"), 0.85, 1e-9);
  EXPECT_NEAR(witness(*f, "vt_p"), 0.85, 1e-9);

  // Round trip: simulate the pair at the witness corner.  The solved
  // operating point must exhibit the claimed collapse — the total
  // overdrive left between the rails is below 2 * min_overdrive.
  const std::string corner_deck =
      ".model nc NMOS (KP=100u VTO=0.85 LAMBDA=0.02)\n"
      ".model pc PMOS (KP=40u  VTO=0.85 LAMBDA=0.02)\n"
      "Vdd vdd 0 DC 1.6856\n"
      "MN1 d d 0   nc W=4u  L=4u\n"
      "MP1 d d vdd pc W=10u L=4u\n"
      "Ib1 0 d DC 10u\n"
      "Iin 0 d DC 2u\n";
  Circuit cs = parse(corner_deck);
  spice::DcOptions o;
  o.erc_gate = false;  // the corner trips si.supply-min by design
  const spice::DcResult dc = spice::dc_operating_point(cs, o);
  const spice::SolutionView sol(cs, dc.x);
  const double vd = sol.voltage(cs.node("d"));
  const double vov_n = vd - 0.85;
  const double vov_p = 1.6856 - vd - 0.85;
  EXPECT_LT(std::min(vov_n, vov_p), 0.05);
}

TEST(Verify, OverdriveMarginFiresOnLowVdd) {
  Circuit c = parse(modulator_deck(1.72));
  const verify::VerifyResult r = verify::analyze(c);
  const verify::Finding* f = find_rule(r, "si.overdrive-margin");
  ASSERT_NE(f, nullptr);
  EXPECT_LT(f->margin, 0.05);
  // The witness names the supply corner that collapses the overdrive.
  EXPECT_NEAR(witness(*f, "vdd"), 1.72 * 0.98, 1e-6);
}

TEST(Verify, RegionViolationWhenHoldDrainPinnedLow) {
  // During phi2 the held pair's drain is switched onto a 0.2 V rail:
  // far below the NMOS overdrive, so the held device leaves saturation
  // and the stored current is corrupted.
  const std::string deck = std::string(kModels) +
                           "Vdd vdd 0 DC 3.3\n"
                           "MN1 d gn 0   nmem W=4u  L=4u\n"
                           "MP1 d gp vdd pmem W=10u L=4u\n"
                           "SN gn d PULSE(0 3.3 20n 10n 10n 460n 1u) 1k 1g\n"
                           "SP gp d PULSE(0 3.3 20n 10n 10n 460n 1u) 1k 1g\n"
                           "Ib 0 d DC 12u\n"
                           "SC d x PULSE(0 3.3 520n 10n 10n 460n 1u) 1k 1g\n"
                           "Vx x 0 DC 0.2\n";
  Circuit c = parse(deck);
  const verify::VerifyResult r = verify::analyze(c);
  const verify::Finding* f = find_rule(r, "si.region-violation");
  ASSERT_NE(f, nullptr);
  EXPECT_LT(f->margin, 0.0);
}

TEST(Verify, RangeOverflowOnOverdrivenPair) {
  // 500 uA through a 100 uA/V^2 pair needs ~3.2 V of NMOS overdrive:
  // the drain is pushed past the Vdd + rail_margin window.
  const std::string deck = std::string(kModels) +
                           "Vdd vdd 0 DC 3.3\n"
                           "MN1 d d 0   nmem W=4u  L=4u\n"
                           "MP1 d d vdd pmem W=10u L=4u\n"
                           "Iin 0 d DC 500u\n";
  Circuit c = parse(deck);
  const verify::VerifyResult r = verify::analyze(c);
  const verify::Finding* f = find_rule(r, "si.range-overflow");
  ASSERT_NE(f, nullptr);
  EXPECT_LT(f->margin, 0.0);
}

// ---------------------------------------------------------------------
// Exact clock-phase timing
// ---------------------------------------------------------------------

/// Two-stage cascade whose stage-2 phase leads stage 1's falling edge
/// by `overlap` seconds (0 = exactly abutting, negative = underlap).
Circuit cascade_with_overlap(double overlap) {
  Circuit out;
  const NodeId vdd = out.node("vdd");
  out.add<spice::VoltageSource>("vdd_src", vdd, out.ground(), 3.3);
  const double T = 1e-6, w = 500e-9;
  auto phase1 = [&] {
    return std::make_unique<spice::PulseWave>(0.0, 3.3, 0.0, 0.0, 0.0, w, T);
  };
  auto phase2 = [&] {
    return std::make_unique<spice::PulseWave>(0.0, 3.3, w - overlap, 0.0,
                                              0.0, w - 40e-9, T);
  };
  spice::MosfetParams mp;
  mp.w = 4e-6;
  mp.l = 4e-6;
  mp.kp = 100e-6;
  mp.vt0 = 0.8;
  spice::MosfetParams pp = mp;
  pp.kp = 40e-6;
  pp.w = 10e-6;
  for (int i = 1; i <= 2; ++i) {
    const std::string k = std::to_string(i);
    const NodeId d = out.node("d" + k), gn = out.node("gn" + k),
                 gp = out.node("gp" + k);
    out.add<spice::Mosfet>("mn" + k, spice::MosType::kNmos, d, gn,
                           out.ground(), mp);
    out.add<spice::Mosfet>("mp" + k, spice::MosType::kPmos, d, gp, vdd, pp);
    out.add<spice::Switch>("s" + k + "n", gn, d,
                           i == 1 ? phase1() : phase2(), 1e3, 1e12);
    out.add<spice::Switch>("s" + k + "p", gp, d,
                           i == 1 ? phase1() : phase2(), 1e3, 1e12);
  }
  out.add<spice::Switch>("sc", out.node("d1"), out.node("d2"), phase2(), 1e3,
                         1e12);
  out.add<spice::CurrentSource>("ib1", out.ground(), out.node("d1"), 10e-6);
  out.add<spice::CurrentSource>("ib2", out.ground(), out.node("d2"), 10e-6);
  return out;
}

TEST(VerifyTiming, ExactOverlapCatchesOneNanoPeriodOverlap) {
  // Overlap of 1e-15 s on a 1e-6 s period: 1e-9 periods — three orders
  // of magnitude below the legacy 128-point sampled scan's resolution.
  Circuit c = cascade_with_overlap(1e-15);
  const auto is_overlap = [](const erc::Diagnostic& d) {
    return d.rule == "si.clock-overlap";
  };
  erc::ErcOptions exact;  // exact_clock_phase defaults to true
  const auto exact_diags = erc::check(c, exact);
  EXPECT_TRUE(
      std::any_of(exact_diags.begin(), exact_diags.end(), is_overlap));

  erc::ErcOptions sampled;
  sampled.exact_clock_phase = false;
  const auto sampled_diags = erc::check(c, sampled);
  EXPECT_FALSE(
      std::any_of(sampled_diags.begin(), sampled_diags.end(), is_overlap));
}

TEST(VerifyTiming, NonOverlappingCascadeIsCleanWithMargin) {
  Circuit c = cascade_with_overlap(-20e-9);  // 20 ns underlap
  const auto diags = erc::check(c);
  EXPECT_FALSE(std::any_of(
      diags.begin(), diags.end(),
      [](const erc::Diagnostic& d) { return d.rule == "si.clock-overlap"; }));

  // The timing matrix reports the exact non-overlap margin.
  const spice::Switch* a = nullptr;
  const spice::Switch* b = nullptr;
  for (const auto& e : c.elements()) {
    if (e->name() == "s1n") a = dynamic_cast<const spice::Switch*>(e.get());
    if (e->name() == "s2n") b = dynamic_cast<const spice::Switch*>(e.get());
  }
  ASSERT_TRUE(a != nullptr && b != nullptr);
  const verify::OverlapReport rep =
      verify::phase_overlap(verify::switch_phase(*a), verify::switch_phase(*b));
  EXPECT_EQ(rep.overlap, 0.0);
  EXPECT_NEAR(rep.margin, 20e-9, 1e-12);
}

TEST(VerifyTiming, SubSampleOverlapIsMeasuredExactly) {
  Circuit c = cascade_with_overlap(1e-15);
  const spice::Switch* a = nullptr;
  const spice::Switch* b = nullptr;
  for (const auto& e : c.elements()) {
    if (e->name() == "s1n") a = dynamic_cast<const spice::Switch*>(e.get());
    if (e->name() == "s2n") b = dynamic_cast<const spice::Switch*>(e.get());
  }
  ASSERT_TRUE(a != nullptr && b != nullptr);
  const verify::OverlapReport rep =
      verify::phase_overlap(verify::switch_phase(*a), verify::switch_phase(*b));
  EXPECT_GT(rep.overlap, 0.0);
  EXPECT_LT(rep.overlap, 1e-12);
}

// ---------------------------------------------------------------------
// Robustness and telemetry
// ---------------------------------------------------------------------

TEST(Verify, TerminatesOnInconsistentSourceRing) {
  // A ring of floating 1 V sources around a grounded anchor: the join
  // constraints chase each other around the loop; the analysis must
  // still terminate within the iteration cap.
  Circuit c;
  const NodeId a = c.node("a"), b = c.node("b"), d = c.node("d");
  c.add<spice::VoltageSource>("vg", a, c.ground(), 1.0);
  c.add<spice::VoltageSource>("v1", b, a, 1.0);
  c.add<spice::VoltageSource>("v2", d, b, 1.0);
  c.add<spice::VoltageSource>("v3", a, d, 1.0);
  const verify::VerifyResult r = verify::analyze(c);
  EXPECT_LE(r.stats.iterations, 64u);
  EXPECT_GE(r.stats.nodes, 3u);
}

TEST(Verify, TelemetryCountersRecorded) {
  obs::set_enabled(true);
  const auto runs0 = obs::counter("verify.runs").value();
  const auto corners0 = obs::counter("verify.corners_evaluated").value();
  Circuit c = parse(modulator_deck(1.72));
  const verify::VerifyResult r = verify::analyze(c);
  obs::set_enabled(false);
  EXPECT_EQ(obs::counter("verify.runs").value(), runs0 + 1);
  EXPECT_GT(obs::counter("verify.corners_evaluated").value(), corners0);
  EXPECT_GE(r.stats.corners_evaluated, 1u);
  const std::string js = obs::snapshot_json();
  EXPECT_NE(js.find("verify.runs"), std::string::npos);
  EXPECT_NE(js.find("verify.findings"), std::string::npos);
}

}  // namespace
