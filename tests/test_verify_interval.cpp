// Edge cases of the outward-rounded interval domain: empty
// propagation through every operator, division by zero-containing
// denominators, outward rounding, lattice laws, and termination of the
// widening operator.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "verify/interval.hpp"

namespace {

using si::verify::Interval;
using si::verify::join;
using si::verify::meet;
using si::verify::widen;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Interval, DefaultIsEmptyAndFactoriesClassify) {
  EXPECT_TRUE(Interval{}.is_empty());
  EXPECT_TRUE(Interval::empty().is_empty());
  EXPECT_TRUE(Interval::top().is_top());
  EXPECT_TRUE(Interval::point(2.5).is_point());
  EXPECT_EQ(Interval::make(3.0, 1.0).lo, 1.0);  // sorted construction
  EXPECT_EQ(Interval::make(3.0, 1.0).hi, 3.0);
}

TEST(Interval, EmptyPropagatesThroughEveryOperator) {
  const Interval e = Interval::empty();
  const Interval a = Interval::make(1.0, 2.0);
  EXPECT_TRUE((e + a).is_empty());
  EXPECT_TRUE((a - e).is_empty());
  EXPECT_TRUE((e * a).is_empty());
  EXPECT_TRUE((a / e).is_empty());
  EXPECT_TRUE((-e).is_empty());
  EXPECT_TRUE(si::verify::sqrt(e).is_empty());
  EXPECT_TRUE(si::verify::min(e, a).is_empty());
  EXPECT_TRUE(si::verify::max(a, e).is_empty());
  // join/meet treat empty as the lattice bottom, not as poison.
  EXPECT_EQ(join(e, a), a);
  EXPECT_TRUE(meet(e, a).is_empty());
}

TEST(Interval, OutwardRoundingContainsExactResult) {
  // 0.1 + 0.2 != 0.3 in binary; the outward-rounded sum must still
  // contain the real-number result.
  const Interval s = Interval::point(0.1) + Interval::point(0.2);
  EXPECT_LE(s.lo, 0.3);
  EXPECT_GT(s.hi, 0.3);
  EXPECT_LT(s.lo, s.hi);  // strictly widened around the float sum
  EXPECT_TRUE(s.contains(0.1 + 0.2));
  // Same for products and quotients of awkward values.
  const Interval p = Interval::point(1.0 / 3.0) * Interval::point(3.0);
  EXPECT_TRUE(p.contains(1.0));
  const Interval q = Interval::point(1.0) / Interval::point(3.0);
  EXPECT_TRUE(q.contains(1.0 / 3.0));
  EXPECT_LT(q.lo, q.hi);  // strictly widened
}

TEST(Interval, MultiplicationCoversSignCases) {
  const Interval m = Interval::make(-2.0, 3.0) * Interval::make(-5.0, 4.0);
  EXPECT_LE(m.lo, -15.0);  // 3 * -5
  EXPECT_GE(m.hi, 12.0);   // 3 * 4
  // 0 * inf corner: [0,1] * top must stay top, not NaN.
  const Interval zt = Interval::make(0.0, 1.0) * Interval::top();
  EXPECT_TRUE(zt.is_top());
}

TEST(Interval, DivisionByZeroContainingDenominator) {
  const Interval num = Interval::make(1.0, 2.0);
  // Exactly zero: no finite quotient exists — bottom.
  EXPECT_TRUE((num / Interval::point(0.0)).is_empty());
  // Spanning zero: quotient unbounded — top.
  EXPECT_TRUE((num / Interval::make(-1.0, 1.0)).is_top());
  // Touching zero at one end also spans in the closed-interval sense.
  EXPECT_TRUE((num / Interval::make(0.0, 1.0)).is_top());
  // Bounded away from zero: ordinary division.
  const Interval q = num / Interval::make(2.0, 4.0);
  EXPECT_TRUE(q.contains(0.25));
  EXPECT_TRUE(q.contains(1.0));
  EXPECT_FALSE(q.contains(1.5));
}

TEST(Interval, SqrtClampsNegativePart) {
  EXPECT_TRUE(si::verify::sqrt(Interval::make(-2.0, -1.0)).is_empty());
  const Interval r = si::verify::sqrt(Interval::make(-1.0, 4.0));
  EXPECT_EQ(r.lo, 0.0);
  EXPECT_TRUE(r.contains(2.0));
}

TEST(Interval, JoinMeetLatticeLaws) {
  const Interval a = Interval::make(0.0, 2.0);
  const Interval b = Interval::make(1.0, 3.0);
  EXPECT_EQ(join(a, b), Interval::make(0.0, 3.0));
  EXPECT_EQ(meet(a, b), Interval::make(1.0, 2.0));
  EXPECT_EQ(join(a, b), join(b, a));
  EXPECT_EQ(meet(a, b), meet(b, a));
  // Absorption: a join (a meet b) == a.
  EXPECT_EQ(join(a, meet(a, b)), a);
  // Disjoint meet is empty.
  EXPECT_TRUE(meet(Interval::make(0.0, 1.0), Interval::make(2.0, 3.0))
                  .is_empty());
  EXPECT_TRUE(Interval::make(0.0, 3.0).contains(b));
}

TEST(Interval, WideningTerminatesThroughLandmarkThenInfinity) {
  const Interval landmark = Interval::make(-0.3, 3.6);  // rail window
  Interval v = Interval::make(1.0, 1.1);
  // A chain that grows every step must stabilize in finitely many
  // widenings: value -> landmark -> infinity per bound.
  int changes = 0;
  for (int i = 1; i <= 100; ++i) {
    const Interval grown =
        Interval::make(v.lo - 0.01 * i, v.hi + 0.01 * i);
    const Interval w = widen(v, grown, landmark);
    if (w != v) ++changes;
    ASSERT_TRUE(w.contains(grown));  // widening never loses states
    v = w;
  }
  EXPECT_LE(changes, 2);  // one jump to the landmark, one to top
  EXPECT_EQ(v.lo, -kInf);
  EXPECT_EQ(v.hi, kInf);
}

TEST(Interval, WideningLandsOnLandmarkWhenItCoversTheGrowth) {
  const Interval landmark = Interval::make(-0.3, 3.6);
  const Interval prev = Interval::make(1.0, 2.0);
  const Interval next = Interval::make(0.5, 2.5);
  const Interval w = widen(prev, next, landmark);
  EXPECT_EQ(w, landmark);
  // Without a landmark the grown bounds go straight to infinity.
  const Interval w2 = widen(prev, next);
  EXPECT_EQ(w2.lo, -kInf);
  EXPECT_EQ(w2.hi, kInf);
  // A stable bound is left untouched.
  const Interval w3 = widen(prev, Interval::make(1.2, 2.5), landmark);
  EXPECT_EQ(w3.lo, 1.0);
  EXPECT_EQ(w3.hi, 3.6);
}

TEST(Interval, ToleranceConstructors) {
  const Interval r = Interval::around_rel(3.3, 0.02);
  EXPECT_TRUE(r.contains(3.3 * 0.98));
  EXPECT_TRUE(r.contains(3.3 * 1.02));
  EXPECT_FALSE(r.contains(3.2));
  const Interval a = Interval::around_abs(0.8, 0.05);
  EXPECT_TRUE(a.contains(0.75));
  EXPECT_TRUE(a.contains(0.85));
  EXPECT_FALSE(a.contains(0.7));
  // Negative nominal with relative tolerance keeps orientation.
  const Interval n = Interval::around_rel(-5e-6, 0.05);
  EXPECT_TRUE(n.contains(-5.25e-6));
  EXPECT_TRUE(n.contains(-4.75e-6));
}

TEST(Interval, ToStringRendersSpecialValues) {
  EXPECT_EQ(si::verify::to_string(Interval::empty()), "empty");
  EXPECT_EQ(si::verify::to_string(Interval::top()), "top");
  EXPECT_EQ(si::verify::to_string(Interval::make(1.0, 2.0)), "[1, 2]");
}

}  // namespace
