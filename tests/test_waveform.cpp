#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "spice/waveform.hpp"

namespace {

using namespace si::spice;

/// Sorted, deduplicated breakpoints of `w` in (t0, t1].
std::vector<double> bps(const Waveform& w, double t0, double t1) {
  std::vector<double> out;
  w.breakpoints(t0, t1, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void expect_bps(const std::vector<double>& got,
                const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_NEAR(got[i], want[i], 1e-18) << "breakpoint " << i;
}

TEST(Waveform, DcIsConstant) {
  DcWave w(2.5);
  EXPECT_DOUBLE_EQ(w.value(0.0), 2.5);
  EXPECT_DOUBLE_EQ(w.value(1e9), 2.5);
  EXPECT_DOUBLE_EQ(w.dc_value(), 2.5);
}

TEST(Waveform, SineOffsetDelayPhase) {
  SineWave w(1.0, 0.5, 1e3, 1e-3, 0.0);
  // Before the delay: offset only.
  EXPECT_DOUBLE_EQ(w.value(0.5e-3), 1.0);
  EXPECT_DOUBLE_EQ(w.dc_value(), 1.0);
  // Quarter period after the delay: peak.
  EXPECT_NEAR(w.value(1e-3 + 0.25e-3), 1.5, 1e-12);
  EXPECT_THROW(SineWave(0.0, 1.0, 0.0), std::invalid_argument);
}

TEST(Waveform, PulseTimingAndEdges) {
  // 0->1, delay 1us, rise 0.1us, width 0.3us, fall 0.1us, period 1us.
  PulseWave w(0.0, 1.0, 1e-6, 0.1e-6, 0.1e-6, 0.3e-6, 1e-6);
  EXPECT_DOUBLE_EQ(w.value(0.5e-6), 0.0);       // before delay
  EXPECT_NEAR(w.value(1.05e-6), 0.5, 1e-9);     // mid rise
  EXPECT_DOUBLE_EQ(w.value(1.2e-6), 1.0);       // plateau
  EXPECT_NEAR(w.value(1.45e-6), 0.5, 1e-9);     // mid fall
  EXPECT_DOUBLE_EQ(w.value(1.8e-6), 0.0);       // low
  // Second period repeats.
  EXPECT_DOUBLE_EQ(w.value(2.2e-6), 1.0);
  EXPECT_DOUBLE_EQ(w.dc_value(), 0.0);
}

TEST(Waveform, PulseValidation) {
  EXPECT_THROW(PulseWave(0, 1, 0, -1e-9, 1e-9, 1e-9, 1e-6),
               std::invalid_argument);
  EXPECT_THROW(PulseWave(0, 1, 0, 1e-9, 1e-9, 2e-6, 1e-6),
               std::invalid_argument);
  EXPECT_THROW(PulseWave(0, 1, 0, 1e-9, 1e-9, 1e-9, 0.0),
               std::invalid_argument);
}

TEST(Waveform, PulseZeroEdgeTimes) {
  PulseWave w(0.0, 1.0, 0.0, 0.0, 0.0, 0.5e-6, 1e-6);
  EXPECT_DOUBLE_EQ(w.value(0.1e-6), 1.0);
  EXPECT_DOUBLE_EQ(w.value(0.7e-6), 0.0);
}

TEST(Waveform, PwlInterpolationAndClamping) {
  PwlWave w({{0.0, 0.0}, {1.0, 2.0}, {3.0, -2.0}});
  EXPECT_DOUBLE_EQ(w.value(-5.0), 0.0);   // clamp low
  EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);    // interpolation
  EXPECT_DOUBLE_EQ(w.value(2.0), 0.0);    // second segment
  EXPECT_DOUBLE_EQ(w.value(10.0), -2.0);  // clamp high
}

TEST(Waveform, PwlValidation) {
  EXPECT_THROW(PwlWave({{0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(PwlWave({{1.0, 0.0}, {1.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(PwlWave({{2.0, 0.0}, {1.0, 2.0}}), std::invalid_argument);
}

TEST(Waveform, TwoPhaseClockNonOverlap) {
  const TwoPhaseClock clk{200e-9, 3.3, 0.0, 2e-9, 4e-9};
  const auto p1 = clk.phase1();
  const auto p2 = clk.phase2();
  // Mid phase 1: p1 high, p2 low.
  EXPECT_GT(p1->value(50e-9), 3.0);
  EXPECT_LT(p2->value(50e-9), 0.3);
  // Mid phase 2: reversed.
  EXPECT_LT(p1->value(150e-9), 0.3);
  EXPECT_GT(p2->value(150e-9), 3.0);
  // In the non-overlap gap both are low.
  EXPECT_LT(p1->value(100e-9), 0.5);
  EXPECT_LT(p2->value(100e-9), 0.5);
  // Never both high: scan a full period.
  for (double t = 0.0; t < 200e-9; t += 0.5e-9)
    EXPECT_FALSE(p1->value(t) > 1.65 && p2->value(t) > 1.65) << "t=" << t;
}

TEST(WaveformBreakpoints, PulseEmitsFourEdgesPerPeriod) {
  // delay 1us, rise 0.1us, width 0.3us, fall 0.1us, period 1us: edges at
  // delay + k*T + {0, rise, rise+width, rise+width+fall}.
  PulseWave w(0.0, 1.0, 1e-6, 0.1e-6, 0.1e-6, 0.3e-6, 1e-6);
  expect_bps(bps(w, 0.0, 2.1e-6),
             {1.0e-6, 1.1e-6, 1.4e-6, 1.5e-6, 2.0e-6, 2.1e-6});
}

TEST(WaveformBreakpoints, WindowIsHalfOpen) {
  PulseWave w(0.0, 1.0, 0.0, 0.1e-6, 0.1e-6, 0.3e-6, 1e-6);
  // t0 is exclusive: the edge exactly at t0 must not be re-emitted.
  expect_bps(bps(w, 0.1e-6, 0.5e-6), {0.4e-6, 0.5e-6});
  // t1 is inclusive (and the rise-start edge exactly at t0 = 0 is not):
  expect_bps(bps(w, 0.0, 0.1e-6), {0.1e-6});
  // Empty window between edges emits nothing.
  EXPECT_TRUE(bps(w, 0.55e-6, 0.95e-6).empty());
}

TEST(WaveformBreakpoints, PwlEmitsKnots) {
  PwlWave w({{0.0, 0.0}, {1.0, 2.0}, {3.0, -2.0}});
  expect_bps(bps(w, 0.0, 10.0), {1.0, 3.0});
  expect_bps(bps(w, -1.0, 0.5), {0.0});
  EXPECT_TRUE(bps(w, 3.0, 10.0).empty());
}

TEST(WaveformBreakpoints, SineEmitsOnlyTurnOn) {
  SineWave delayed(0.0, 1.0, 1e3, 2e-3);
  expect_bps(bps(delayed, 0.0, 10e-3), {2e-3});
  EXPECT_TRUE(bps(delayed, 2e-3, 10e-3).empty());  // (t0, t1] excludes t0
  SineWave immediate(0.0, 1.0, 1e3);
  EXPECT_TRUE(bps(immediate, 0.0, 10e-3).empty());
}

TEST(WaveformBreakpoints, DcEmitsNothing) {
  DcWave w(1.0);
  EXPECT_TRUE(bps(w, 0.0, 1.0).empty());
}

TEST(WaveformBreakpoints, ChangesBeginAtBreakpointsFlags) {
  // Pulse trains and constants are flat between their breakpoints, so
  // the event queue may skip per-step sampling; sine and PWL drift.
  EXPECT_TRUE(PulseWave(0.0, 1.0, 0.0, 1e-9, 1e-9, 0.4e-6, 1e-6)
                  .changes_begin_at_breakpoints());
  EXPECT_TRUE(DcWave(1.0).changes_begin_at_breakpoints());
  EXPECT_FALSE(SineWave(0.0, 1.0, 1e3).changes_begin_at_breakpoints());
  EXPECT_FALSE(PwlWave({{0.0, 0.0}, {1.0, 1.0}})
                   .changes_begin_at_breakpoints());
}

TEST(WaveformOnIntervals, PulseCrossingsResolvedOnTheRamps) {
  // 0->3.3 pulse, 10 ns edges: the 1.65 V threshold is crossed halfway
  // up the rise (25 ns) and halfway down the fall (495 ns).
  PulseWave w(0.0, 3.3, 20e-9, 10e-9, 10e-9, 460e-9, 1e-6);
  const auto on = w.on_intervals(1.65);
  ASSERT_EQ(on.size(), 1u);
  EXPECT_NEAR(on[0].begin, 25e-9, 1e-15);
  EXPECT_NEAR(on[0].end, 495e-9, 1e-15);
}

TEST(WaveformOnIntervals, SubSampleSliverIsNotMissed) {
  // A 1 fs pulse — five orders of magnitude below any period/64
  // sampling pitch — must still produce its ON run, exactly sized.
  PulseWave w(0.0, 1.0, 0.0, 0.0, 0.0, 1e-15, 1e-6);
  const auto on = w.on_intervals(0.5);
  ASSERT_EQ(on.size(), 1u);
  EXPECT_NEAR(on[0].length(), 1e-15, 1e-18);
}

TEST(WaveformOnIntervals, PeriodicPatternIsNormalisedToOnePeriod) {
  // Second-phase clock: ON [520, 980) ns of every 1 us period.  The
  // steady-state pattern is reported normalised to [0, period).
  PulseWave w(0.0, 1.0, 520e-9, 0.0, 0.0, 460e-9, 1e-6);
  const auto on = w.on_intervals(0.5);
  ASSERT_EQ(on.size(), 1u);
  EXPECT_NEAR(on[0].begin, 520e-9, 1e-12);
  EXPECT_NEAR(on[0].end, 980e-9, 1e-12);
  EXPECT_LT(on[0].end, 1e-6);
}

TEST(WaveformOnIntervals, AperiodicTailExtendsToInfinity) {
  // A constant above threshold is ON forever.
  const auto dc_on = DcWave(1.0).on_intervals(0.5);
  ASSERT_EQ(dc_on.size(), 1u);
  EXPECT_EQ(dc_on[0].begin, 0.0);
  EXPECT_TRUE(std::isinf(dc_on[0].end));
  EXPECT_TRUE(DcWave(0.2).on_intervals(0.5).empty());
  // A ramp that settles above threshold: one run from the crossing,
  // open-ended.
  PwlWave ramp({{0.0, 0.0}, {1e-3, 1.0}});
  const auto on = ramp.on_intervals(0.5, 2e-3);
  ASSERT_EQ(on.size(), 1u);
  EXPECT_NEAR(on[0].begin, 0.5e-3, 1e-9);
  EXPECT_TRUE(std::isinf(on[0].end));
}

TEST(Waveform, ClockPeriodicity) {
  const TwoPhaseClock clk{1e-6, 1.0, 0.0, 5e-9, 10e-9};
  const auto p1 = clk.phase1();
  for (double t : {0.3e-6, 0.7e-6}) {
    EXPECT_NEAR(p1->value(t), p1->value(t + 1e-6), 1e-12);
    EXPECT_NEAR(p1->value(t), p1->value(t + 7e-6), 1e-12);
  }
}

}  // namespace
