#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dsp/window.hpp"

namespace {

using si::dsp::WindowType;

class WindowParamTest : public ::testing::TestWithParam<WindowType> {};

TEST_P(WindowParamTest, SymmetricAndBounded) {
  const auto w = si::dsp::make_window(GetParam(), 129);
  ASSERT_EQ(w.size(), 129u);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12) << "asymmetric at " << i;
    EXPECT_LE(w[i], 1.0 + 1e-4);  // flattop coefficients sum to ~1.000006
  }
  // Peak at the center for symmetric cosine windows.
  EXPECT_NEAR(w[64], *std::max_element(w.begin(), w.end()), 1e-12);
}

TEST_P(WindowParamTest, CoherentGainInRange) {
  const auto w = si::dsp::make_window(GetParam(), 1024);
  const double cg = si::dsp::coherent_gain(w);
  EXPECT_GT(cg, 0.0);
  EXPECT_LE(cg, 1.0 + 1e-12);
}

TEST_P(WindowParamTest, EnbwAtLeastOne) {
  const auto w = si::dsp::make_window(GetParam(), 4096);
  EXPECT_GE(si::dsp::enbw_bins(w), 1.0 - 1e-12);
  EXPECT_GE(si::dsp::leakage_halfwidth(GetParam()), 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllWindows, WindowParamTest,
    ::testing::Values(WindowType::kRectangular, WindowType::kHann,
                      WindowType::kHamming, WindowType::kBlackman,
                      WindowType::kBlackmanHarris, WindowType::kFlatTop),
    [](const auto& info) {
      std::string n = si::dsp::window_name(info.param);
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

TEST(Window, RectangularIsAllOnes) {
  const auto w = si::dsp::make_window(WindowType::kRectangular, 16);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_DOUBLE_EQ(si::dsp::enbw_bins(w), 1.0);
  EXPECT_DOUBLE_EQ(si::dsp::coherent_gain(w), 1.0);
}

TEST(Window, KnownEnbwValues) {
  // Textbook ENBW values (large-N asymptotes).
  const auto hann = si::dsp::make_window(WindowType::kHann, 1 << 16);
  EXPECT_NEAR(si::dsp::enbw_bins(hann), 1.5, 1e-3);
  const auto blackman = si::dsp::make_window(WindowType::kBlackman, 1 << 16);
  EXPECT_NEAR(si::dsp::enbw_bins(blackman), 1.7268, 1e-3);
}

TEST(Window, BlackmanEndpointsNearZero) {
  const auto w = si::dsp::make_window(WindowType::kBlackman, 101);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[50], 1.0, 1e-12);
}

TEST(Window, RejectsZeroLength) {
  EXPECT_THROW(si::dsp::make_window(WindowType::kHann, 0),
               std::invalid_argument);
}

TEST(Window, NamesAreDistinct) {
  EXPECT_EQ(si::dsp::window_name(WindowType::kBlackman), "blackman");
  EXPECT_NE(si::dsp::window_name(WindowType::kHann),
            si::dsp::window_name(WindowType::kHamming));
}

}  // namespace
